"""Tests for the indexed pending queue and the cached cluster aggregates.

Covers the invariants introduced by the fast-path scheduling refactor:
queue ordering semantics (including evicted-task re-queueing), O(1)
membership behaviour, stale-epoch finish events, the ``max_time`` cutoff
interacting with a non-empty queue, and the per-model aggregate caches
staying consistent with full scans through place/evict/finish cycles.
"""

import pytest

from repro.cluster import (
    AggregateConsistencyError,
    Cluster,
    ClusterSimulator,
    GPUModel,
    PendingQueue,
    PodPlacement,
    SchedulingDecision,
    SimulatorConfig,
    TaskState,
    TaskType,
    make_nodes,
    run_simulation,
)
from repro.schedulers.base import Scheduler
from repro.schedulers.placement import find_placement
from tests.conftest import build_task


class FirstFitScheduler(Scheduler):
    name = "first-fit"

    def try_schedule(self, task, cluster, now):
        placements = find_placement(task, cluster.nodes)
        if placements is None:
            return None
        return SchedulingDecision(placements=placements)


# ----------------------------------------------------------------------
# PendingQueue unit behaviour
# ----------------------------------------------------------------------
class TestPendingQueue:
    def test_preserves_insertion_order(self):
        queue = PendingQueue()
        tasks = [build_task(submit_time=float(i)) for i in range(5)]
        for task in tasks:
            queue.append(task)
        assert queue.snapshot() == tasks
        assert [t.task_id for t in queue] == [t.task_id for t in tasks]

    def test_membership_and_removal(self):
        queue = PendingQueue()
        first, second = build_task(), build_task()
        queue.append(first)
        queue.append(second)
        assert first in queue and second in queue
        queue.remove(first)
        assert first not in queue
        assert len(queue) == 1
        with pytest.raises(KeyError):
            queue.remove(first)
        assert queue.discard(first) is False
        assert queue.discard(second) is True
        assert not queue

    def test_readd_goes_to_tail(self):
        queue = PendingQueue()
        a, b = build_task(), build_task()
        queue.append(a)
        queue.append(b)
        queue.remove(a)
        queue.append(a)  # like list.remove + list.append
        assert [t.task_id for t in queue] == [b.task_id, a.task_id]

    def test_reappend_while_queued_moves_to_tail(self):
        """Re-appending a still-queued task moves it behind later arrivals
        (the same-pass schedule-then-evict path relies on this)."""
        queue = PendingQueue()
        a, b = build_task(), build_task()
        queue.append(a)
        queue.append(b)
        queue.append(a)
        assert [t.task_id for t in queue] == [b.task_id, a.task_id]
        assert len(queue) == 2

    def test_duplicate_task_id_rejected(self):
        queue = PendingQueue()
        task = build_task()
        queue.append(task)
        queue.append(task)  # idempotent for the same object
        assert len(queue) == 1
        impostor = build_task()
        impostor.task_id = task.task_id
        with pytest.raises(ValueError):
            queue.append(impostor)

    def test_snapshot_is_decoupled(self):
        queue = PendingQueue()
        task = build_task()
        queue.append(task)
        snap = queue.snapshot()
        snap.clear()
        assert task in queue and len(queue) == 1


# ----------------------------------------------------------------------
# Eviction / re-queue ordering
# ----------------------------------------------------------------------
class PreemptAllScheduler(FirstFitScheduler):
    """HP tasks evict every running spot task when they do not fit."""

    name = "preempt-all"

    def try_schedule(self, task, cluster, now):
        decision = super().try_schedule(task, cluster, now)
        if decision is not None or task.is_spot:
            return decision
        victims = [t.task_id for t in cluster.running_spot_tasks()]
        if not victims:
            return None
        placements = [
            PodPlacement(node_id=cluster.nodes[0].node_id, gpu_indices=(), fraction=task.gpus_per_pod)
            for _ in range(task.num_pods)
        ]
        return SchedulingDecision(placements=placements, preempted_task_ids=victims)


class TestEvictionRequeueOrdering:
    def test_evicted_task_requeues_at_tail(self):
        """An evicted task re-enters the pending queue behind waiting tasks."""
        cluster = Cluster.homogeneous(1, 8, GPUModel.A100)
        running_spot = build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=5000.0, submit_time=0.0)
        waiting_spot = build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=500.0, submit_time=10.0)
        hp = build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=600.0)
        sim = ClusterSimulator(cluster, PreemptAllScheduler(), SimulatorConfig(restart_overhead=0.0))
        sim.submit_all([running_spot, waiting_spot, hp])

        observed = {}
        original_evict = sim._evict

        def recording_evict(task):
            original_evict(task)
            observed["order"] = [t.task_id for t in sim.pending]

        sim._evict = recording_evict
        sim.run()
        # At eviction time the queue held waiting_spot and the (not yet
        # dequeued) preemptor; the evicted task must have joined at the
        # tail, not at its original position.
        assert observed["order"] == [waiting_spot.task_id, hp.task_id, running_spot.task_id]
        assert running_spot.state is TaskState.COMPLETED
        assert waiting_spot.state is TaskState.COMPLETED
        assert hp.state is TaskState.COMPLETED

    def test_task_scheduled_then_evicted_in_same_pass_survives(self):
        """A task placed and immediately preempted within one scheduling pass
        must stay in the pending queue (the naive list implementation
        silently dropped it)."""

        class SpotFirstPreemptScheduler(PreemptAllScheduler):
            name = "spot-first"

            def sort_queue(self, pending, now):
                # Offer spot tasks before HP so an HP task later in the same
                # pass can preempt a spot task scheduled moments earlier.
                return sorted(pending, key=lambda t: (t.is_hp, t.submit_time, t.task_id))

        cluster = Cluster.homogeneous(1, 8, GPUModel.A100)
        blocker = build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=0.0)
        spot = build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=800.0, submit_time=10.0)
        hp = build_task(TaskType.HP, gpus_per_pod=8.0, duration=600.0, submit_time=20.0)
        config = SimulatorConfig(restart_overhead=0.0, preemption_grace_period=0.0)
        metrics = run_simulation(cluster, SpotFirstPreemptScheduler(), [blocker, spot, hp], config)
        # When `blocker` finishes, one pass offers [spot, hp]: spot is placed
        # first, then hp preempts it.  The spot task must survive the pass,
        # stay queued and eventually complete.
        assert spot.eviction_count >= 1
        assert spot.state is TaskState.COMPLETED
        assert hp.state is TaskState.COMPLETED
        assert metrics.unfinished_tasks == 0


# ----------------------------------------------------------------------
# Stale epochs and max_time
# ----------------------------------------------------------------------
class TestStaleEpochsAndCutoff:
    def test_stale_finish_event_ignored_after_eviction(self):
        """The finish event of a preempted run must not complete the task."""
        cluster = Cluster.homogeneous(1, 8, GPUModel.A100)
        spot = build_task(
            TaskType.SPOT, gpus_per_pod=8.0, duration=2000.0, submit_time=0.0,
            checkpoint_interval=500.0,
        )
        hp = build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=100.0)
        config = SimulatorConfig(restart_overhead=0.0)
        run_simulation(cluster, PreemptAllScheduler(), [spot, hp], config)
        assert spot.eviction_count == 1
        assert spot.state is TaskState.COMPLETED
        # The stale first-run finish event (at t=2000) must not have marked
        # the task complete while it was re-queued: its actual finish time
        # reflects the lost progress after the t=100 eviction.
        assert spot.finish_time > 2000.0
        assert len(spot.run_logs) == 2
        assert spot.run_logs[0].evicted and not spot.run_logs[1].evicted

    def test_max_time_leaves_pending_tasks_unfinished(self):
        cluster = Cluster.homogeneous(1, 8, GPUModel.A100)
        running = build_task(TaskType.HP, gpus_per_pod=8.0, duration=10_000.0, submit_time=0.0)
        queued = [
            build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=100.0, submit_time=float(i))
            for i in range(1, 4)
        ]
        sim = ClusterSimulator(cluster, FirstFitScheduler(), SimulatorConfig(max_time=500.0))
        sim.submit_all([running] + queued)
        metrics = sim.run()
        # The cutoff fired with the queue still indexed and intact.
        assert metrics.unfinished_tasks == 4
        assert len(sim.pending) == 3
        assert all(t in sim.pending for t in queued)
        assert all(t.state is TaskState.PENDING for t in queued)

    def test_tick_counter_tracks_heap_after_cutoff_and_stale_events(self):
        """The per-kind event counters match the heap through evictions."""
        cluster = Cluster.homogeneous(1, 8, GPUModel.A100)
        spot = build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=2000.0, submit_time=0.0)
        hp = build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=100.0)
        sim = ClusterSimulator(cluster, PreemptAllScheduler(), SimulatorConfig(restart_overhead=0.0))
        sim.submit_all([spot, hp])
        sim.run()
        from repro.cluster.events import DYNAMICS_EVENT_KINDS, EventKind

        task_events = sum(
            1
            for e in sim._events
            if e.kind is not EventKind.QUOTA_TICK and e.kind not in DYNAMICS_EVENT_KINDS
        )
        ticks = sum(1 for e in sim._events if e.kind is EventKind.QUOTA_TICK)
        dynamics = sum(1 for e in sim._events if e.kind in DYNAMICS_EVENT_KINDS)
        assert sim._task_events == task_events
        assert sim._tick_events == ticks
        assert sim._dynamics_events == dynamics
        assert sim._task_events == 0  # drained trace leaves no work behind


# ----------------------------------------------------------------------
# Cached aggregates
# ----------------------------------------------------------------------
class TestAggregateConsistency:
    def _hetero_cluster(self, validate=True):
        nodes = make_nodes(2, GPUModel.A100, 8, "agg") + make_nodes(
            3, GPUModel.H800, 8, "agg"
        )
        return Cluster(nodes, validate_aggregates=validate)

    def test_validation_passes_through_full_simulation(self):
        cluster = Cluster(make_nodes(2, GPUModel.A100, 8, "sim"), validate_aggregates=True)
        spot = build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=2000.0, submit_time=0.0)
        hp = build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=100.0)
        filler = build_task(TaskType.SPOT, gpus_per_pod=4.0, duration=500.0, submit_time=50.0)
        metrics = run_simulation(cluster, PreemptAllScheduler(), [spot, hp, filler])
        assert metrics.unfinished_tasks == 0

    def test_per_model_aggregates_and_stats(self):
        cluster = self._hetero_cluster()
        a100 = build_task(TaskType.HP, gpus_per_pod=8.0, gpu_model=GPUModel.A100)
        anywhere = build_task(TaskType.SPOT, gpus_per_pod=2.0)  # no model constraint
        cluster.place_task(a100, [PodPlacement(node_id=cluster.nodes[0].node_id, gpu_indices=())])
        cluster.place_task(anywhere, [PodPlacement(node_id=cluster.nodes[2].node_id, gpu_indices=())])
        assert cluster.idle_gpus(GPUModel.A100) == 8.0
        assert cluster.idle_gpus(GPUModel.H800) == 22.0
        assert cluster.hp_gpus() == 8.0
        assert cluster.spot_gpus() == 2.0
        stats_a100 = cluster.stats(GPUModel.A100)
        # Model-agnostic running tasks count toward every model's view.
        assert stats_a100.running_hp_tasks == 1
        assert stats_a100.running_spot_tasks == 1
        stats_h800 = cluster.stats(GPUModel.H800)
        assert stats_h800.running_hp_tasks == 0
        assert stats_h800.running_spot_tasks == 1
        assert cluster.stats().running_hp_tasks == 1
        cluster.remove_task(a100)
        cluster.remove_task(anywhere)
        assert cluster.idle_gpus() == cluster.total_gpus() == 40.0
        assert cluster.stats().running_spot_tasks == 0

    def test_direct_node_mutation_keeps_aggregates_fresh(self):
        """Tests and placement helpers allocate on nodes directly; the
        listener must keep cluster aggregates in sync anyway."""
        cluster = self._hetero_cluster()
        task = build_task(TaskType.HP, gpus_per_pod=5.0)
        cluster.nodes[0].allocate_pod(task)
        assert cluster.idle_gpus(GPUModel.A100) == 11.0
        assert cluster.hp_gpus(GPUModel.A100) == 5.0
        cluster.validate_aggregates()  # would raise on drift
        cluster.nodes[0].release_task(task.task_id)
        assert cluster.idle_gpus(GPUModel.A100) == 16.0

    def test_node_cannot_join_two_clusters(self):
        """Claiming an already-owned node must fail fast instead of silently
        freezing the first cluster's cached aggregates."""
        nodes = make_nodes(2, GPUModel.A100, 8, "owned")
        first = Cluster(nodes)
        with pytest.raises(ValueError, match="already belongs to a cluster"):
            Cluster(nodes)
        # Detaching frees the node for a new owner.
        for node in nodes:
            node.register_capacity_listener(None)
        second = Cluster(nodes)
        assert second.idle_gpus() == 16.0
        assert first.idle_gpus() == 16.0  # still consistent, just detached

    def test_failed_construction_unwinds_listeners(self):
        """A construction that fails part-way must release the nodes it
        already claimed, so a corrected retry succeeds."""
        fresh = make_nodes(2, GPUModel.A100, 8, "fresh")
        owned = make_nodes(1, GPUModel.A100, 8, "owned")
        Cluster(owned)
        with pytest.raises(ValueError):
            Cluster(fresh + owned)
        retry = Cluster(fresh)  # fresh nodes were unwound, not leaked
        assert retry.idle_gpus() == 16.0

    def test_tampering_is_caught_in_debug_mode(self):
        cluster = self._hetero_cluster()
        node = cluster.nodes[0]
        node.register_capacity_listener(None)  # sever the maintenance hook
        task = build_task(TaskType.SPOT, gpus_per_pod=4.0)
        node.allocate_pod(task)
        with pytest.raises(AggregateConsistencyError):
            cluster.validate_aggregates()

    def test_spot_gpus_with_guarantee_uses_spot_index(self):
        cluster = self._hetero_cluster()
        committed = build_task(TaskType.SPOT, gpus_per_pod=4.0)
        casual = build_task(TaskType.SPOT, gpus_per_pod=2.0)
        cluster.place_task(committed, [PodPlacement(node_id=cluster.nodes[0].node_id, gpu_indices=())])
        cluster.place_task(casual, [PodPlacement(node_id=cluster.nodes[1].node_id, gpu_indices=())])
        committed.guaranteed_hours = 2.0
        casual.guaranteed_hours = 0.5
        assert cluster.spot_gpus_with_guarantee(1.0, now=0.0) == 4.0
        assert cluster.spot_gpus_with_guarantee(0.25, now=0.0) == 6.0
        assert [t.task_id for t in cluster.running_spot_tasks()] == [
            committed.task_id,
            casual.task_id,
        ]
