"""Unit tests for the task model: checkpoints, run logs, derived metrics."""

import pytest

from repro.cluster import RunLog, TaskState, TaskType, generate_checkpoints
from tests.conftest import build_task


class TestCheckpoints:
    def test_checkpoints_cover_duration(self):
        points = generate_checkpoints(duration=7200.0, interval=1800.0)
        assert points[-1] == pytest.approx(7200.0)
        assert all(b > a for a, b in zip(points, points[1:]))

    def test_short_task_single_checkpoint(self):
        points = generate_checkpoints(duration=600.0, interval=1800.0)
        assert points == [600.0]

    def test_non_divisible_duration_appends_final_checkpoint(self):
        points = generate_checkpoints(duration=4000.0, interval=1800.0)
        assert points[-1] == pytest.approx(4000.0)
        assert points[0] == pytest.approx(1800.0)

    def test_zero_interval_yields_single_point(self):
        assert generate_checkpoints(1000.0, 0.0) == [1000.0]


class TestTaskBasics:
    def test_total_gpus(self):
        task = build_task(TaskType.HP, num_pods=3, gpus_per_pod=4.0)
        assert task.total_gpus == pytest.approx(12.0)

    def test_type_predicates(self):
        assert build_task(TaskType.HP).is_hp
        assert build_task(TaskType.SPOT).is_spot

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_task(TaskType.HP, num_pods=0)
        with pytest.raises(ValueError):
            build_task(TaskType.HP, gpus_per_pod=0.0)
        with pytest.raises(ValueError):
            build_task(TaskType.HP, duration=0.0)

    def test_auto_ids_unique_and_prefixed(self):
        hp = build_task(TaskType.HP)
        spot = build_task(TaskType.SPOT)
        assert hp.task_id != spot.task_id
        assert hp.task_id.startswith("hp-")
        assert spot.task_id.startswith("spot-")

    def test_tasks_hashable_by_identity(self):
        a = build_task(TaskType.SPOT)
        b = build_task(TaskType.SPOT)
        assert len({a, b}) == 2
        assert a != b

    def test_describe_mentions_type_and_state(self):
        task = build_task(TaskType.HP)
        text = task.describe()
        assert "HP" in text and "pending" in text


class TestProgressAccounting:
    def test_remaining_work_initially_full(self, spot_task):
        assert spot_task.remaining_work == pytest.approx(spot_task.duration)

    def test_highest_checkpoint_before(self):
        task = build_task(TaskType.SPOT, duration=7200.0, checkpoint_interval=1800.0)
        assert task.highest_checkpoint_before(0.0) == -1
        assert task.highest_checkpoint_before(1800.0) == 0
        assert task.highest_checkpoint_before(5000.0) == 1
        assert task.highest_checkpoint_before(7200.0) == len(task.checkpoints) - 1

    def test_time_since_checkpoint_while_running(self):
        task = build_task(TaskType.SPOT, duration=7200.0, checkpoint_interval=1800.0)
        task.state = TaskState.RUNNING
        task.run_logs.append(RunLog(start=0.0))
        assert task.time_since_checkpoint(900.0) == pytest.approx(900.0)
        # After the first checkpoint at 1800s only the remainder is at risk.
        assert task.time_since_checkpoint(2000.0) == pytest.approx(200.0)

    def test_preemption_waste_scales_with_gpus(self):
        task = build_task(TaskType.SPOT, num_pods=2, gpus_per_pod=4.0, duration=7200.0)
        task.state = TaskState.RUNNING
        task.run_logs.append(RunLog(start=0.0))
        assert task.preemption_waste(600.0) == pytest.approx(8.0 * 600.0)

    def test_time_since_checkpoint_zero_when_not_running(self, spot_task):
        assert spot_task.time_since_checkpoint(1000.0) == 0.0


class TestTaskMetrics:
    def test_jct_none_until_finished(self, spot_task):
        assert spot_task.jct is None
        spot_task.finish_time = spot_task.submit_time + 5000.0
        assert spot_task.jct == pytest.approx(5000.0)

    def test_jqt_accumulates(self, spot_task):
        spot_task.total_queue_time = 120.0
        assert spot_task.jqt == pytest.approx(120.0)

    def test_run_count(self, spot_task):
        assert spot_task.run_count == 0
        spot_task.run_logs.append(RunLog(start=0.0))
        spot_task.run_logs.append(RunLog(start=100.0))
        assert spot_task.run_count == 2
