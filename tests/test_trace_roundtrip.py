"""Property-based trace round-trip tests and save/load edge cases.

Hypothesis drives ``records -> Trace -> records`` identity through both
the plain-JSON and the gzip (`.json.gz`) serialisation paths, and the
atomic-write / deterministic-ordering satellites get targeted checks.
"""

import gzip
import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import GPUModel
from repro.workloads import Trace, generate_trace

# ----------------------------------------------------------------------
# Strategies: JSON-shaped task records matching Trace.to_records()
# ----------------------------------------------------------------------
_ids = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="-_"),
    min_size=1,
    max_size=12,
)
_finite = dict(allow_nan=False, allow_infinity=False)

task_records = st.fixed_dictionaries(
    {
        "task_id": _ids,
        "task_type": st.sampled_from([0, 1]),
        "num_pods": st.integers(min_value=1, max_value=8),
        "gpus_per_pod": st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0, 8.0]),
        "duration": st.floats(min_value=1.0, max_value=1e6, **_finite),
        "submit_time": st.floats(min_value=0.0, max_value=1e7, **_finite),
        "org": st.sampled_from(["org-A", "org-B", "org-C", "other"]),
        "gpu_model": st.sampled_from([None] + [m.value for m in GPUModel]),
        "gang": st.booleans(),
        "checkpoint_interval": st.floats(min_value=1.0, max_value=1e5, **_finite),
    }
)

trace_records = st.fixed_dictionaries(
    {
        "metadata": st.dictionaries(
            _ids,
            st.one_of(st.integers(), st.floats(**_finite), st.text(max_size=10), st.booleans()),
            max_size=4,
        ),
        "org_history": st.dictionaries(
            st.sampled_from(["org-A", "org-B"]),
            st.lists(st.floats(min_value=0.0, max_value=1e4, **_finite), min_size=1, max_size=48),
            max_size=2,
        ),
        "tasks": st.lists(task_records, max_size=25),
    }
)


class TestRoundTripProperties:
    @given(records=trace_records)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_records_to_trace_to_records_identity(self, records):
        trace = Trace.from_records(records)
        assert trace.to_records() == records

    @given(records=trace_records, use_gzip=st.booleans())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_save_load_identity_json_and_gzip(self, records, use_gzip, tmp_path_factory):
        path = tmp_path_factory.mktemp("rt") / ("t.json.gz" if use_gzip else "t.json")
        trace = Trace.from_records(records)
        trace.save(path)
        assert Trace.load(path).to_records() == records

    @given(records=trace_records)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_sorted_tasks_order_independent_of_insertion(self, records):
        trace = Trace.from_records(records)
        reversed_trace = Trace(tasks=list(reversed(trace.tasks)))
        assert [t.task_id for t in trace.sorted_tasks()] == [
            t.task_id for t in reversed_trace.sorted_tasks()
        ]


class TestSortedTasksTieBreak:
    def test_simultaneous_arrivals_sorted_by_task_id(self):
        records = {
            "tasks": [
                {"task_id": name, "task_type": 1, "num_pods": 1, "gpus_per_pod": 1.0,
                 "duration": 60.0, "submit_time": 100.0, "org": "o"}
                for name in ("b", "a", "c")
            ]
        }
        trace = Trace.from_records(records)
        assert [t.task_id for t in trace.sorted_tasks()] == ["a", "b", "c"]


class TestSaveSemantics:
    def test_gzip_path_is_actually_gzipped_and_smaller(self, tmp_path):
        trace = generate_trace(256.0, duration_hours=8.0, seed=11)
        plain, zipped = tmp_path / "t.json", tmp_path / "t.json.gz"
        trace.save(plain)
        trace.save(zipped)
        assert zipped.read_bytes()[:2] == b"\x1f\x8b"
        assert zipped.stat().st_size < plain.stat().st_size
        assert Trace.load(zipped).to_records() == Trace.load(plain).to_records()

    def test_gzip_bytes_are_deterministic(self, tmp_path):
        trace = generate_trace(128.0, duration_hours=4.0, seed=2)
        a, b = tmp_path / "a.json.gz", tmp_path / "b.json.gz"
        trace.save(a)
        trace.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_save_overwrites_atomically_and_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "t.json"
        first = generate_trace(128.0, duration_hours=4.0, seed=1)
        second = generate_trace(128.0, duration_hours=4.0, seed=2)
        first.save(path)
        second.save(path)
        assert Trace.load(path).metadata["seed"] == 2
        assert [p.name for p in tmp_path.iterdir()] == ["t.json"]

    def test_interrupted_save_preserves_previous_file(self, tmp_path, monkeypatch):
        path = tmp_path / "t.json.gz"
        first = generate_trace(128.0, duration_hours=4.0, seed=1)
        first.save(path)
        before = path.read_bytes()

        def explode(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(gzip.GzipFile, "write", explode)
        try:
            generate_trace(128.0, duration_hours=4.0, seed=2).save(path)
        except KeyboardInterrupt:
            pass
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["t.json.gz"]

    def test_plain_json_stays_plain(self, tmp_path):
        path = tmp_path / "t.json"
        generate_trace(128.0, duration_hours=4.0, seed=1).save(path)
        json.loads(path.read_text())  # parses as plain JSON
