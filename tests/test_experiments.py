"""Smoke tests for the experiment harness (small scales, every runner)."""

import pytest

from repro.experiments import (
    ExperimentScale,
    FULL_SCALE,
    MEDIUM_SCALE,
    SMALL_SCALE,
    baseline_factories,
    gfs_factory,
    paper_reference_benefit,
    run_deployment_experiment,
    run_forecasting_experiment,
    run_heatmap_observation,
    run_one,
    run_request_cdf_observation,
    run_sweep,
    run_table10,
    run_table5,
    run_table6,
    run_table8,
    run_table9,
    scale_by_name,
)
from repro.experiments.forecasting import ForecastingExperimentConfig
from repro.workloads import SpotWorkloadLevel


TINY = ExperimentScale(name="tiny", num_nodes=12, duration_hours=8.0, seed=13)


class TestConfig:
    def test_presets(self):
        assert SMALL_SCALE.total_gpus < MEDIUM_SCALE.total_gpus < FULL_SCALE.total_gpus
        assert scale_by_name("small") is SMALL_SCALE
        with pytest.raises(KeyError):
            scale_by_name("galactic")

    def test_build_cluster_and_trace(self):
        cluster = TINY.build_cluster()
        assert cluster.total_gpus() == TINY.total_gpus
        trace = TINY.build_trace(spot_scale=2.0)
        assert len(trace) > 0
        assert trace.metadata["spot_scale"] == 2.0


class TestRunner:
    def test_run_one_produces_metrics(self):
        result = run_one(TINY, gfs_factory(), "GFS", "tiny", spot_scale=1.0)
        row = result.as_row()
        assert row["hp_jct"] > 0
        assert 0.0 <= row["spot_eviction"] <= 1.0

    def test_run_sweep_covers_all_schedulers(self):
        factories = {"YARN-CS": baseline_factories()["YARN-CS"], "GFS": gfs_factory()}
        results = run_sweep(TINY, factories, "tiny", spot_scale=2.0)
        assert set(results.rows()) == {"YARN-CS", "GFS"}


class TestTableRunners:
    def test_table5_single_level(self):
        result = run_table5(TINY, levels=[SpotWorkloadLevel.MEDIUM])
        assert "medium" in result.per_workload
        rows = result.per_workload["medium"].rows()
        assert "GFS" in rows and "YARN-CS" in rows
        report = result.report()
        assert "Table 5" in report

    def test_table6_two_horizons(self):
        result = run_table6(TINY, guarantee_hours=(1.0, 4.0), spot_scale=2.0)
        assert set(result.per_horizon) == {1.0, 4.0}
        assert "guarantee hours" in result.report()

    def test_table8_and_9_and_10(self):
        for runner, expected in ((run_table8, "GFS-E"), (run_table9, "GFS-D"), (run_table10, "GFS-SP")):
            result = runner(TINY, spot_scale=2.0)
            assert expected in result.per_variant
            assert "GFS" in result.per_variant
            assert "Table" in result.report()


class TestForecastingExperiment:
    def test_small_forecasting_run(self):
        config = ForecastingExperimentConfig(
            history_weeks=4, stride=12, orglinear_epochs=10, baselines=["DLinear", "DeepAR"]
        )
        result = run_forecasting_experiment(config)
        assert set(result.evaluations) == {"OrgLinear", "DLinear", "DeepAR"}
        assert "MAE" in result.report()
        assert result.best_model("mae") in result.evaluations


class TestObservationAndDeployment:
    def test_request_cdf_observation(self):
        cmp = run_request_cdf_observation(samples=500)
        assert cmp.modern_full_node_fraction > 0.5
        assert cmp.legacy_partial_fraction > 0.5

    def test_heatmap_observation(self):
        rates = run_heatmap_observation(hours=48)
        assert set(rates) == {"Cluster A", "Cluster B", "Cluster C"}
        assert all(0.0 <= r <= 1.0 for r in rates.values())

    def test_deployment_experiment_tiny(self):
        result = run_deployment_experiment(fleet_scale=0.004, duration_hours=6.0, spot_scale=2.0)
        assert len(result.per_model) == 4
        assert result.benefit is not None
        assert "Figure 9" in result.report()

    def test_paper_reference_benefit_positive(self):
        assert paper_reference_benefit().monthly_gain_usd > 0
