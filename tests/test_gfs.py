"""Tests for the assembled GFS scheduler and its ablation variants."""

import numpy as np
import pytest

from repro.cluster import Cluster, GPUModel, SimulatorConfig, TaskType, run_simulation
from repro.core import ABLATION_OVERRIDES, GFSConfig, GFSScheduler, make_ablation
from repro.core.gde import PreviousWeekPeakForecaster, SeasonalQuantileForecaster
from tests.conftest import build_task


@pytest.fixture
def flat_history():
    return {"org-A": np.full(336, 100.0), "org-B": np.full(336, 60.0)}


@pytest.fixture
def started(flat_history):
    """A GFS scheduler bound to a 32-node cluster with quota initialised."""
    cluster = Cluster.homogeneous(32, 8, GPUModel.A100)
    scheduler = GFSScheduler(org_history=flat_history)
    scheduler.on_simulation_start(cluster, now=0.0)
    return cluster, scheduler


class TestConstruction:
    def test_forecaster_selection(self, flat_history):
        assert isinstance(GFSScheduler(GFSConfig(forecaster="seasonal")).gde.forecaster,
                          SeasonalQuantileForecaster)
        assert isinstance(GFSScheduler(GFSConfig(forecaster="prev-week-peak")).gde.forecaster,
                          PreviousWeekPeakForecaster)
        with pytest.raises(ValueError):
            GFSScheduler(GFSConfig(forecaster="oracle"))

    def test_ablation_overrides(self):
        assert make_ablation("gfs-e").config.forecaster == "prev-week-peak"
        assert make_ablation("gfs-d").config.adapt_eta is False
        assert make_ablation("gfs-s").config.use_colocation is False
        assert make_ablation("gfs-p").config.random_preemption is True
        sp = make_ablation("gfs-sp")
        assert sp.config.random_preemption and not sp.config.use_eviction_awareness
        assert set(ABLATION_OVERRIDES) == {"gfs", "gfs-e", "gfs-d", "gfs-s", "gfs-p", "gfs-sp"}

    def test_unknown_ablation_raises(self):
        with pytest.raises(KeyError):
            make_ablation("gfs-x")

    def test_ablation_names(self):
        assert make_ablation("gfs").name == "GFS"
        assert make_ablation("gfs-sp").name == "GFS-SP"


class TestQuotaIntegration:
    def test_quota_initialised_on_start(self, started):
        _, scheduler = started
        assert scheduler.sqa is not None
        # Capacity 256, predicted HP demand 160 -> quota near 96.
        assert 0.0 < scheduler.current_quota() <= 256.0

    def test_spot_rejected_beyond_quota(self, started):
        cluster, scheduler = started
        scheduler.sqa.current_quota = 8.0
        small = build_task(TaskType.SPOT, gpus_per_pod=4.0)
        big = build_task(TaskType.SPOT, gpus_per_pod=4.0, num_pods=4)
        assert scheduler.try_schedule(small, cluster, 0.0) is not None
        assert scheduler.try_schedule(big, cluster, 0.0) is None

    def test_hp_ignores_quota(self, started):
        cluster, scheduler = started
        scheduler.sqa.current_quota = 0.0
        hp = build_task(TaskType.HP, gpus_per_pod=8.0)
        assert scheduler.try_schedule(hp, cluster, 0.0) is not None

    def test_admitted_spot_gets_guarantee(self, started):
        cluster, scheduler = started
        spot = build_task(TaskType.SPOT, gpus_per_pod=1.0)
        scheduler.try_schedule(spot, cluster, 0.0)
        assert spot.guaranteed_hours == scheduler.config.guarantee_hours

    def test_tick_updates_quota_and_observes_demand(self, started):
        cluster, scheduler = started
        before = len(scheduler.sqa.history)
        scheduler.on_tick(cluster, now=3600.0, pending=[])
        assert len(scheduler.sqa.history) == before + 1
        # The observed demand for the current hour was recorded.
        hour = scheduler._hour_index(3600.0)
        assert len(scheduler.gde.forecaster.history["org-A"]) >= hour

    def test_eviction_feedback_only_counts_guarantee_violations(self, started):
        cluster, scheduler = started
        young = build_task(TaskType.SPOT, gpus_per_pod=1.0)
        young.run_logs.append(__import__("repro.cluster.task", fromlist=["RunLog"]).RunLog(start=0.0))
        old = build_task(TaskType.SPOT, gpus_per_pod=1.0)
        old.run_logs.append(__import__("repro.cluster.task", fromlist=["RunLog"]).RunLog(start=0.0))
        scheduler.on_task_evicted(young, cluster, now=600.0)          # violated guarantee
        scheduler.on_task_evicted(old, cluster, now=2 * 3600.0)      # past the guarantee
        assert len(scheduler._spot_evictions) == 1


class TestEndToEnd:
    def _run(self, scheduler_factory, trace, nodes=16):
        cluster = Cluster.homogeneous(nodes, 8, GPUModel.A100)
        scheduler = scheduler_factory(trace)
        return run_simulation(cluster, scheduler, trace.sorted_tasks(), SimulatorConfig())

    def test_gfs_full_simulation(self, tiny_trace):
        metrics = self._run(lambda t: GFSScheduler(org_history=t.org_history), tiny_trace)
        assert metrics.unfinished_tasks == 0
        assert metrics.hp.eviction_rate == 0.0
        assert metrics.spot.eviction_rate < 0.5

    def test_gfs_keeps_hp_queuing_low(self, tiny_trace):
        metrics = self._run(lambda t: GFSScheduler(org_history=t.org_history), tiny_trace)
        assert metrics.hp.jqt_mean < 600.0

    @pytest.mark.parametrize("variant", ["gfs-e", "gfs-d", "gfs-s", "gfs-p", "gfs-sp"])
    def test_ablation_variants_run(self, variant, tiny_trace):
        metrics = self._run(
            lambda t: make_ablation(variant, org_history=t.org_history), tiny_trace
        )
        assert metrics.unfinished_tasks == 0

    def test_gfs_without_history_still_works(self, tiny_trace):
        metrics = self._run(lambda t: GFSScheduler(), tiny_trace)
        assert metrics.unfinished_tasks == 0
