"""Tests for the Eq. 12 optimisation model and the toy exact solver."""

import pytest

from repro.optim import (
    Assignment,
    MILPNode,
    MILPTask,
    SchedulingProblem,
    greedy_reference,
    solve_exact,
)


def small_problem():
    tasks = [
        MILPTask("hp-1", num_pods=1, gpus_per_pod=4, is_hp=True),
        MILPTask("hp-2", num_pods=2, gpus_per_pod=2, is_hp=True),
        MILPTask("spot-1", num_pods=1, gpus_per_pod=2, is_hp=False),
    ]
    nodes = [MILPNode("n1", free_gpus=8), MILPNode("n2", free_gpus=4)]
    return SchedulingProblem(tasks=tasks, nodes=nodes)


class TestFeasibility:
    def test_capacity_constraint(self):
        problem = small_problem()
        bad = Assignment(pods={"hp-1": ["n2"], "hp-2": ["n2", "n2"], "spot-1": ["n2"]})
        assert not problem.check_feasible(bad)

    def test_gang_constraint(self):
        problem = small_problem()
        partial = Assignment(pods={"hp-2": ["n1"]})  # needs two pods
        assert not problem.check_feasible(partial)

    def test_hp_cannot_be_preempted(self):
        problem = small_problem()
        bad = Assignment(preempted=["hp-1"])
        assert not problem.check_feasible(bad)

    def test_valid_assignment(self):
        problem = small_problem()
        ok = Assignment(pods={"hp-1": ["n1"], "hp-2": ["n1", "n2"], "spot-1": ["n2"]})
        assert problem.check_feasible(ok)

    def test_running_spot_occupies_capacity_unless_preempted(self):
        tasks = [
            MILPTask("spot-r", num_pods=1, gpus_per_pod=8, is_hp=False, running_on="n1"),
            MILPTask("hp-1", num_pods=1, gpus_per_pod=8, is_hp=True),
        ]
        problem = SchedulingProblem(tasks=tasks, nodes=[MILPNode("n1", free_gpus=8)])
        blocked = Assignment(pods={"hp-1": ["n1"]})
        assert not problem.check_feasible(blocked)
        with_preemption = Assignment(pods={"hp-1": ["n1"]}, preempted=["spot-r"])
        assert problem.check_feasible(with_preemption)


class TestObjective:
    def test_scheduling_more_work_lowers_objective(self):
        problem = small_problem()
        empty = Assignment()
        full = Assignment(pods={"hp-1": ["n1"], "hp-2": ["n1", "n2"], "spot-1": ["n2"]})
        assert problem.objective_value(full) < problem.objective_value(empty)

    def test_preemption_raises_objective(self):
        tasks = [
            MILPTask("spot-r", num_pods=1, gpus_per_pod=2, is_hp=False, running_on="n1",
                     preemption_waste=100.0),
        ]
        problem = SchedulingProblem(tasks=tasks, nodes=[MILPNode("n1", free_gpus=8)])
        assert problem.objective_value(Assignment(preempted=["spot-r"])) > problem.objective_value(
            Assignment()
        )


class TestSolvers:
    def test_exact_solution_is_feasible_and_not_worse_than_greedy(self):
        problem = small_problem()
        exact = solve_exact(problem)
        greedy = greedy_reference(problem)
        assert problem.check_feasible(exact)
        assert problem.check_feasible(greedy)
        assert exact.objective <= greedy.objective + 1e-9

    def test_exact_schedules_everything_when_capacity_allows(self):
        problem = small_problem()
        exact = solve_exact(problem)
        assert all(exact.is_assigned(t.task_id) for t in problem.tasks)

    def test_exact_prefers_preempting_low_waste_spot(self):
        tasks = [
            MILPTask("spot-cheap", 1, 4, is_hp=False, running_on="n1", preemption_waste=1.0),
            MILPTask("spot-pricey", 1, 4, is_hp=False, running_on="n1", preemption_waste=100.0),
            MILPTask("hp-1", 1, 4, is_hp=True),
        ]
        # A large utilisation weight makes scheduling the HP task worthwhile
        # even at the cost of one preemption, so the solver must pick the
        # cheaper victim.
        problem = SchedulingProblem(tasks=tasks, nodes=[MILPNode("n1", free_gpus=8)], alpha=5.0)
        exact = solve_exact(problem)
        assert exact.is_assigned("hp-1")
        assert "spot-cheap" in exact.preempted
        assert "spot-pricey" not in exact.preempted

    def test_solver_guard_on_large_instances(self):
        tasks = [MILPTask(f"t{i}", 2, 1, is_hp=True) for i in range(12)]
        nodes = [MILPNode(f"n{i}", 8) for i in range(12)]
        with pytest.raises(ValueError):
            solve_exact(SchedulingProblem(tasks=tasks, nodes=nodes), max_states=1000)
