"""Unit and integration tests for the discrete-event simulator."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterSimulator,
    GPUModel,
    PodPlacement,
    SchedulingDecision,
    SimulationError,
    SimulatorConfig,
    TaskState,
    TaskType,
    run_simulation,
)
from repro.schedulers import YarnCSScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.placement import find_placement
from tests.conftest import build_task


class FirstFitScheduler(Scheduler):
    """Minimal scheduler used to exercise the simulator in isolation."""

    name = "first-fit"

    def try_schedule(self, task, cluster, now):
        placements = find_placement(task, cluster.nodes)
        if placements is None:
            return None
        return SchedulingDecision(placements=placements)


class PreemptEverythingScheduler(FirstFitScheduler):
    """HP tasks evict every running spot task when they do not fit."""

    name = "preempt-everything"

    def try_schedule(self, task, cluster, now):
        decision = super().try_schedule(task, cluster, now)
        if decision is not None or task.is_spot:
            return decision
        victims = [t.task_id for t in cluster.running_spot_tasks()]
        if not victims:
            return None
        # The simulator applies evictions before materialising the placement,
        # so placing on the first node is valid once the victims are gone.
        placements = [
            PodPlacement(node_id=cluster.nodes[0].node_id, gpu_indices=(), fraction=task.gpus_per_pod)
            for _ in range(task.num_pods)
        ]
        return SchedulingDecision(placements=placements, preempted_task_ids=victims)


def simple_cluster(nodes=2):
    return Cluster.homogeneous(nodes, 8, GPUModel.A100)


class TestBasicExecution:
    def test_single_task_runs_to_completion(self):
        cluster = simple_cluster()
        task = build_task(TaskType.HP, gpus_per_pod=4.0, duration=1000.0, submit_time=0.0)
        metrics = run_simulation(cluster, FirstFitScheduler(), [task])
        assert task.state is TaskState.COMPLETED
        assert task.finish_time == pytest.approx(1000.0)
        assert metrics.hp.count == 1
        assert metrics.hp.jqt_mean == pytest.approx(0.0)

    def test_queued_task_waits_for_capacity(self):
        cluster = simple_cluster(nodes=1)
        first = build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=0.0)
        second = build_task(TaskType.HP, gpus_per_pod=8.0, duration=500.0, submit_time=10.0)
        run_simulation(cluster, FirstFitScheduler(), [first, second])
        assert second.first_start_time == pytest.approx(1000.0)
        assert second.total_queue_time == pytest.approx(990.0)
        assert second.finish_time == pytest.approx(1500.0)

    def test_empty_submission_raises(self):
        simulator = ClusterSimulator(simple_cluster(), FirstFitScheduler())
        with pytest.raises(SimulationError):
            simulator.run()

    def test_max_time_stops_early(self):
        cluster = simple_cluster()
        task = build_task(TaskType.HP, gpus_per_pod=1.0, duration=10_000.0)
        config = SimulatorConfig(max_time=500.0)
        metrics = run_simulation(cluster, FirstFitScheduler(), [task], config)
        assert metrics.unfinished_tasks == 1

    def test_allocation_samples_collected(self):
        cluster = simple_cluster()
        task = build_task(TaskType.HP, gpus_per_pod=8.0, duration=2000.0)
        config = SimulatorConfig(tick_interval=300.0)
        simulator = ClusterSimulator(cluster, FirstFitScheduler(), config)
        simulator.submit(task)
        simulator.run()
        assert len(simulator.allocation_samples) > 0
        assert max(simulator.allocation_samples) <= 1.0


class TestPreemptionMechanics:
    def test_preempted_spot_requeues_and_finishes(self):
        cluster = simple_cluster(nodes=1)
        spot = build_task(
            TaskType.SPOT, gpus_per_pod=8.0, duration=2000.0, submit_time=0.0,
            checkpoint_interval=600.0,
        )
        hp = build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=900.0)
        config = SimulatorConfig(preemption_grace_period=30.0, restart_overhead=0.0)
        metrics = run_simulation(cluster, PreemptEverythingScheduler(), [spot, hp], config)
        assert hp.state is TaskState.COMPLETED
        assert spot.state is TaskState.COMPLETED
        assert spot.eviction_count == 1
        # Progress rolled back to the 600s checkpoint: total work re-done.
        assert spot.finish_time > 2000.0
        assert metrics.spot.eviction_rate == pytest.approx(0.5)

    def test_hp_tasks_are_never_evicted(self):
        cluster = simple_cluster(nodes=1)
        hp_running = build_task(TaskType.HP, gpus_per_pod=8.0, duration=2000.0, submit_time=0.0)
        hp_new = build_task(TaskType.HP, gpus_per_pod=8.0, duration=500.0, submit_time=100.0)

        class BadScheduler(FirstFitScheduler):
            def try_schedule(self, task, cluster, now):
                if task is hp_new:
                    from repro.cluster import PodPlacement

                    return SchedulingDecision(
                        placements=[
                            PodPlacement(node_id=cluster.nodes[0].node_id, gpu_indices=())
                        ],
                        preempted_task_ids=[hp_running.task_id],
                    )
                return super().try_schedule(task, cluster, now)

        with pytest.raises(SimulationError):
            run_simulation(cluster, BadScheduler(), [hp_running, hp_new])

    def test_grace_period_delays_preemptor_start(self):
        cluster = simple_cluster(nodes=1)
        spot = build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=3000.0, submit_time=0.0)
        hp = build_task(TaskType.HP, gpus_per_pod=8.0, duration=500.0, submit_time=600.0)
        config = SimulatorConfig(preemption_grace_period=120.0, restart_overhead=0.0)
        run_simulation(cluster, PreemptEverythingScheduler(), [spot, hp], config)
        assert hp.first_start_time == pytest.approx(600.0 + 120.0)

    def test_eviction_recorded_on_node_history(self):
        cluster = simple_cluster(nodes=1)
        spot = build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=3000.0, submit_time=0.0)
        hp = build_task(TaskType.HP, gpus_per_pod=8.0, duration=500.0, submit_time=600.0)
        run_simulation(cluster, PreemptEverythingScheduler(), [spot, hp])
        assert cluster.nodes[0].eviction_count_since(1e9, 1e9) == 1
        assert cluster.evicted_spot_runs == 1


class TestInvariants:
    def test_capacity_never_exceeded_with_real_scheduler(self, tiny_trace):
        cluster = Cluster.homogeneous(16, 8, GPUModel.A100)
        config = SimulatorConfig(tick_interval=300.0)
        simulator = ClusterSimulator(cluster, YarnCSScheduler(), config)

        original_tick = simulator._handle_tick

        def checked_tick():
            original_tick()
            for node in cluster.nodes:
                assert node.allocated_gpus <= node.total_gpus + 1e-6

        simulator._handle_tick = checked_tick
        simulator.submit_all(tiny_trace.sorted_tasks()[:150])
        metrics = simulator.run()
        assert metrics.unfinished_tasks == 0

    def test_all_tasks_eventually_finish(self, tiny_trace):
        cluster = Cluster.homogeneous(16, 8, GPUModel.A100)
        metrics = run_simulation(cluster, YarnCSScheduler(), tiny_trace.sorted_tasks()[:200])
        assert metrics.unfinished_tasks == 0
        assert metrics.hp.jct_mean > 0
