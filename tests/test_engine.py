"""Tests for the parallel experiment engine (determinism, caching, specs)."""

import dataclasses

import pytest

from repro.experiments import (
    ArtifactCache,
    ExperimentEngine,
    ExperimentScale,
    SchedulerSpec,
    SimulationJob,
    WorkloadSpec,
    baseline_specs,
    comparison_specs,
    execute_job,
    gfs_spec,
    gfs_variant_spec,
    metrics_to_payload,
    sweep_jobs,
)

TINY = ExperimentScale(name="tiny", num_nodes=8, duration_hours=6.0, seed=13)


def tiny_grid():
    """A 2-scheduler x 2-workload grid, small enough for unit tests."""
    specs = [SchedulerSpec(kind="yarn-cs"), gfs_spec()]
    workloads = [
        WorkloadSpec(spot_scale=2.0, label="medium"),
        WorkloadSpec(scenario="burst", spot_scale=1.0, label="burst"),
    ]
    return sweep_jobs(TINY, specs, workloads, prefix="grid")


class TestSpecs:
    def test_sweep_jobs_cross_product_and_keys(self):
        jobs = tiny_grid()
        assert len(jobs) == 4
        assert len({j.key for j in jobs}) == 4
        assert jobs[0].key == "grid/medium/YARN-CS"

    def test_seed_offset_in_key(self):
        jobs = sweep_jobs(
            TINY, [gfs_spec()], [WorkloadSpec(seed_offset=2, label="w")], prefix="p"
        )
        assert jobs[0].key == "p/w+s2/GFS"

    def test_display_names(self):
        assert [s.display for s in baseline_specs()] == ["YARN-CS", "Chronus", "Lyra", "FGD"]
        assert gfs_spec().display == "GFS"
        assert gfs_variant_spec("gfs-sp").display == "GFS-SP"
        assert gfs_spec(label="GFS(H=4)", guarantee_hours=4.0).display == "GFS(H=4)"

    def test_comparison_specs_toggle(self):
        assert len(comparison_specs(include_gfs=True)) == 5
        assert len(comparison_specs(include_gfs=False)) == 4

    def test_unknown_scheduler_kind_raises(self):
        job = SimulationJob(
            key="bad",
            scale=TINY,
            scheduler=SchedulerSpec(kind="nope"),
            workload=WorkloadSpec(),
        )
        with pytest.raises(KeyError, match="unknown scheduler kind"):
            execute_job(job)

    def test_duplicate_keys_rejected(self):
        jobs = tiny_grid()
        with pytest.raises(ValueError, match="duplicate job keys"):
            ExperimentEngine().run([jobs[0], jobs[0]])


class TestDeterministicParallelism:
    """Bugcheck: results must not depend on the worker count.

    Guards against RNG or global-counter state leaking across worker
    processes: every job re-seeds its trace generator and resets the task-id
    counter, so a fixed seed gives bit-identical metrics at ``--workers 1``
    and ``--workers N``.
    """

    def test_worker_count_parity(self):
        jobs = tiny_grid()
        serial = ExperimentEngine(workers=1).run(jobs)
        parallel = ExperimentEngine(workers=2).run(jobs)
        assert set(serial) == set(parallel)
        for key in serial:
            assert metrics_to_payload(serial[key]) == metrics_to_payload(parallel[key]), key

    def test_repeated_serial_runs_identical(self):
        jobs = tiny_grid()[:1]
        first = ExperimentEngine().run(jobs)
        second = ExperimentEngine().run(jobs)
        key = jobs[0].key
        assert metrics_to_payload(first[key]) == metrics_to_payload(second[key])


class TestEngineCacheIntegration:
    def test_second_run_hits_cache_with_identical_metrics(self, tmp_path):
        jobs = tiny_grid()[:2]
        cache = ArtifactCache(tmp_path / "cache")
        first_engine = ExperimentEngine(workers=1, cache=cache)
        first = first_engine.run(jobs)
        assert first_engine.stats.executed == 2
        assert first_engine.stats.cache_hits == 0

        second_engine = ExperimentEngine(workers=1, cache=cache)
        second = second_engine.run(jobs)
        assert second_engine.stats.executed == 0
        assert second_engine.stats.cache_hits == 2
        for key in first:
            assert metrics_to_payload(first[key]) == metrics_to_payload(second[key])

    def test_config_change_invalidates(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        jobs = tiny_grid()[:1]
        ExperimentEngine(cache=cache).run(jobs)

        changed_scale = dataclasses.replace(TINY, seed=14)
        changed = [dataclasses.replace(jobs[0], scale=changed_scale)]
        engine = ExperimentEngine(cache=cache)
        engine.run(changed)
        assert engine.stats.executed == 1
        assert engine.stats.cache_hits == 0

    def test_use_cache_false_bypasses(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        jobs = tiny_grid()[:1]
        ExperimentEngine(cache=cache).run(jobs)
        engine = ExperimentEngine(cache=cache, use_cache=False)
        engine.run(jobs)
        assert engine.stats.executed == 1

    def test_identical_cells_share_cache_across_prefixes(self, tmp_path):
        # The same semantic cell appears in several tables (e.g. GFS on the
        # medium workload in Tables 8, 9 and 10); the grid key and labels
        # must not fragment the cache.
        cache = ArtifactCache(tmp_path / "cache")
        workload = WorkloadSpec(spot_scale=2.0, label="medium")
        as_table8 = sweep_jobs(TINY, [gfs_spec()], [workload], prefix="table8")
        as_table9 = sweep_jobs(TINY, [gfs_spec()], [workload], prefix="table9")
        ExperimentEngine(cache=cache).run(as_table8)
        engine = ExperimentEngine(cache=cache)
        engine.run(as_table9)
        assert engine.stats.executed == 0
        assert engine.stats.cache_hits == 1

    def test_scenario_redefinition_invalidates_cache(self, tmp_path):
        # The key hashes the resolved scenario parameterization, not just
        # its name: re-registering a scenario with different knobs must
        # miss, never serve the old scenario's metrics.
        from repro.workloads import Scenario, register_scenario

        cache = ArtifactCache(tmp_path / "cache")
        register_scenario(
            Scenario(name="tmp_eng_scn", summary="v1", overrides={"spot_target_utilization": 0.2}),
            replace_existing=True,
        )
        jobs = sweep_jobs(TINY, [SchedulerSpec(kind="yarn-cs")],
                          [WorkloadSpec(scenario="tmp_eng_scn", label="w")])
        first = ExperimentEngine(cache=cache)
        v1 = first.run(jobs)
        register_scenario(
            Scenario(name="tmp_eng_scn", summary="v2", overrides={"spot_target_utilization": 0.3}),
            replace_existing=True,
        )
        second = ExperimentEngine(cache=cache)
        v2 = second.run(jobs)
        assert second.stats.executed == 1 and second.stats.cache_hits == 0
        assert metrics_to_payload(v1[jobs[0].key]) != metrics_to_payload(v2[jobs[0].key])

    def test_custom_scenario_reaches_pool_workers(self):
        # The engine embeds the resolved Scenario object in the picklable
        # job, so scenarios registered at runtime work at workers > 1
        # regardless of the multiprocessing start method.
        from repro.workloads import Scenario, register_scenario

        register_scenario(
            Scenario(name="tmp_pool_scn", summary="runtime-registered",
                     overrides={"diurnal_arrival_amplitude": 0.1}),
            replace_existing=True,
        )
        jobs = sweep_jobs(
            TINY,
            [SchedulerSpec(kind="yarn-cs"), SchedulerSpec(kind="fgd")],
            [WorkloadSpec(scenario="tmp_pool_scn", label="w")],
        )
        serial = ExperimentEngine(workers=1).run(jobs)
        pooled = ExperimentEngine(workers=2).run(jobs)
        for key in serial:
            assert metrics_to_payload(serial[key]) == metrics_to_payload(pooled[key])


class TestGridRows:
    def test_history_and_rows(self):
        engine = ExperimentEngine()
        jobs = tiny_grid()[:1]
        engine.run(jobs)
        rows = engine.grid_rows()
        assert len(rows) == 1
        row = rows[0]
        assert row["scheduler"] == "YARN-CS"
        assert row["scenario"] == "default"
        assert row["seed"] == TINY.seed
        assert row["hp_count"] > 0


class TestProfiledEngine:
    def test_profiled_cells_match_unprofiled_and_export_obs_columns(self):
        jobs = tiny_grid()[:2]
        plain = ExperimentEngine().run(jobs)
        engine = ExperimentEngine(profile=True)
        profiled = engine.run(jobs)
        for key in plain:
            assert metrics_to_payload(plain[key]) == metrics_to_payload(profiled[key]), key
        rows = engine.grid_rows()
        assert len(rows) == 2
        for row in rows:
            assert row["obs_passes"] > 0
            assert row["obs_events"] > 0
            assert row["obs_wall_s"] > 0
            assert row["obs_scheduled"] <= row["obs_examined"]

    def test_profiled_pool_matches_serial_on_deterministic_columns(self):
        jobs = tiny_grid()[:2]
        serial = ExperimentEngine(profile=True)
        serial.run(jobs)
        pooled = ExperimentEngine(workers=2, profile=True)
        pooled.run(jobs)
        deterministic = [
            "obs_events", "obs_passes", "obs_examined", "obs_scheduled",
            "obs_memo_hits", "obs_index_rejects", "obs_searches",
        ]
        for job in jobs:
            for column in deterministic:
                assert (
                    serial.profiles[job.key][column] == pooled.profiles[job.key][column]
                ), (job.key, column)

    def test_cache_hits_carry_no_obs_columns(self, tmp_path):
        jobs = tiny_grid()[:1]
        cache = ArtifactCache(tmp_path)
        warm = ExperimentEngine(cache=cache, profile=True)
        warm.run(jobs)
        assert jobs[0].key in warm.profiles
        cold = ExperimentEngine(cache=cache, profile=True)
        cold.run(jobs)
        assert cold.stats.cache_hits == 1
        assert jobs[0].key not in cold.profiles
        assert "obs_passes" not in cold.grid_rows()[0]
