"""Durable service sessions: restart recovery, quarantine, idempotent
retries and per-request deadlines.

The guarantees under test (``docs/fault_tolerance.md``):

* with a ``state_dir`` every mutation persists the session (atomic,
  checksummed envelope), and a **new server over the same directory
  recovers it** — continuing the recovered session is bit-identical to
  never having restarted;
* corrupt or unrecoverable store files are **quarantined** at boot, never
  fatal, and ``/readyz`` reports the counts;
* recovered session ids are never re-issued to new sessions;
* a ``POST`` delivered twice under one ``Idempotency-Key`` executes
  **once** (a retried submit never double-submits); a different key is a
  genuinely new request;
* past ``request_timeout_s`` the client gets 504 while the operation
  completes server-side.

pytest-asyncio is deliberately not a dependency: each test owns its loop
via ``asyncio.run``, like ``tests/test_service.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import AsyncServiceClient, SchedulerServer, ServiceError
from repro.service.session import SimulationSession
from repro.service.store import STORE_VERSION, SessionStore
from repro.service.snapshot import snapshot_to_text

PARAMS = {"scheduler": "gfs", "num_nodes": 6, "duration_hours": 4.0, "seed": 11}


def _payload(task_id: str, submit_time: float, *, hp: bool = False, gpus: float = 4.0) -> dict:
    return {
        "task_id": task_id,
        "task_type": 1 if hp else 0,
        "num_pods": 1,
        "gpus_per_pod": gpus,
        "duration": 1800.0,
        "submit_time": submit_time,
        "org": "org-a" if hp else "org-b",
    }


def _wave(prefix: str, count: int, start: float = 0.0) -> list:
    return [_payload(f"{prefix}-{i:03d}", start + i * 120.0, hp=(i % 3 == 0)) for i in range(count)]


def _fingerprint(metrics: dict) -> str:
    return json.dumps(metrics, sort_keys=True)


# ----------------------------------------------------------------------
# Store layer (no server)
# ----------------------------------------------------------------------
class TestSessionStore:
    def _snapshot_bytes(self):
        return SimulationSession(PARAMS).snapshot_bytes()

    def test_save_recover_roundtrip(self, tmp_path):
        store = SessionStore(tmp_path / "state")
        blob = self._snapshot_bytes()
        store.save("session-0007", dict(PARAMS), blob)
        report = store.recover()
        assert report.quarantined == []
        [stored] = report.recovered
        assert stored.session_id == "session-0007"
        assert stored.params == PARAMS
        assert stored.snapshot == blob
        assert report.max_session_number() == 7

    def test_delete_forgets(self, tmp_path):
        store = SessionStore(tmp_path)
        store.save("session-0001", dict(PARAMS), self._snapshot_bytes())
        store.delete("session-0001")
        assert store.recover().recovered == []
        store.delete("session-0001")  # idempotent

    def test_path_tricks_rejected(self, tmp_path):
        store = SessionStore(tmp_path)
        for bad in ("../escape", "a/b", "..", "."):
            with pytest.raises(ValueError, match="invalid session id"):
                store.save(bad, {}, b"")

    @pytest.mark.parametrize(
        "mangle",
        [
            pytest.param(lambda text: "{not json", id="unparseable"),
            pytest.param(lambda text: "[]", id="not-an-object"),
            pytest.param(
                lambda text: json.dumps({**json.loads(text), "store_version": 99}),
                id="future-version",
            ),
            pytest.param(
                lambda text: json.dumps(
                    {k: v for k, v in json.loads(text).items() if k != "snapshot"}
                ),
                id="missing-snapshot",
            ),
            pytest.param(
                lambda text: json.dumps(
                    {**json.loads(text), "snapshot": "UkVQUk9TTlA=corrupt"}
                ),
                id="bad-envelope",
            ),
        ],
    )
    def test_corruption_matrix_quarantines(self, tmp_path, mangle):
        store = SessionStore(tmp_path)
        path = store.save("session-0001", dict(PARAMS), self._snapshot_bytes())
        store.save("session-0002", dict(PARAMS), self._snapshot_bytes())
        path.write_text(mangle(path.read_text()))
        report = store.recover()
        assert report.quarantined == ["session-0001.json"]
        assert [s.session_id for s in report.recovered] == ["session-0002"]
        # Evidence preserved, file no longer scanned.
        assert (tmp_path / "session-0001.json.quarantined").exists()
        again = store.recover()
        assert again.quarantined == []
        assert len(again.recovered) == 1

    def test_flipped_snapshot_bit_fails_checksum(self, tmp_path):
        store = SessionStore(tmp_path)
        blob = bytearray(self._snapshot_bytes())
        blob[len(blob) // 2] ^= 0x01
        record = {
            "store_version": STORE_VERSION,
            "session_id": "session-0001",
            "params": dict(PARAMS),
            "saved_at": 0.0,
            "snapshot": snapshot_to_text(bytes(blob)),
        }
        (tmp_path / "session-0001.json").write_text(json.dumps(record))
        report = store.recover()
        assert report.recovered == []
        assert report.quarantined == ["session-0001.json"]


# ----------------------------------------------------------------------
# Server end-to-end
# ----------------------------------------------------------------------
async def _with_server(body, **server_kwargs):
    server = SchedulerServer(**server_kwargs)
    await server.start(port=0)
    try:
        return await body(server)
    finally:
        await server.stop()


class TestRestartRecovery:
    def test_recovered_session_continues_bit_identically(self, tmp_path):
        state = tmp_path / "state"
        waves = [(900.0, _wave("dur", 6)), (2700.0, _wave("dur2", 6, start=900.0))]

        # Reference: one quiet in-process session, never interrupted.
        reference_session = SimulationSession(PARAMS)
        for advance_to, wave in waves:
            reference_session.submit(wave)
            reference_session.advance(until=advance_to)
        reference_session.advance()
        reference = _fingerprint(reference_session.metrics())

        async def first_life(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                sid = (await client.create_session(**PARAMS))["session_id"]
                advance_to, wave = waves[0]
                await client.submit(sid, wave)
                await client.advance(sid, until=advance_to)
                return sid
            finally:
                await client.close()

        async def second_life(server, sid):
            ready = await AsyncServiceClient(server.host, server.port).readyz()
            assert ready["recovered"] == 1
            assert ready["quarantined"] == 0
            client = AsyncServiceClient(server.host, server.port)
            try:
                listed = [s["session_id"] for s in await client.list_sessions()]
                assert listed == [sid]
                advance_to, wave = waves[1]
                await client.submit(sid, wave)
                await client.advance(sid, until=advance_to)
                await client.advance(sid)
                return _fingerprint(await client.metrics(sid))
            finally:
                await client.close()

        sid = asyncio.run(_with_server(first_life, state_dir=state))
        resumed = asyncio.run(
            _with_server(lambda srv: second_life(srv, sid), state_dir=state)
        )
        assert resumed == reference

    def test_recovery_never_reissues_session_ids(self, tmp_path):
        state = tmp_path / "state"

        async def first_life(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                return (await client.create_session(**PARAMS))["session_id"]
            finally:
                await client.close()

        async def second_life(server, old_sid):
            client = AsyncServiceClient(server.host, server.port)
            try:
                new_sid = (await client.create_session(**PARAMS))["session_id"]
                assert new_sid != old_sid
                listed = {s["session_id"] for s in await client.list_sessions()}
                assert listed == {old_sid, new_sid}
            finally:
                await client.close()

        sid = asyncio.run(_with_server(first_life, state_dir=state))
        asyncio.run(_with_server(lambda srv: second_life(srv, sid), state_dir=state))

    def test_delete_is_durable(self, tmp_path):
        state = tmp_path / "state"

        async def first_life(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                sid = (await client.create_session(**PARAMS))["session_id"]
                await client.delete_session(sid)
            finally:
                await client.close()

        async def second_life(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                assert await client.list_sessions() == []
                assert (await client.readyz())["recovered"] == 0
            finally:
                await client.close()

        asyncio.run(_with_server(first_life, state_dir=state))
        asyncio.run(_with_server(second_life, state_dir=state))

    def test_corrupt_file_quarantined_at_boot(self, tmp_path):
        state = tmp_path / "state"

        async def first_life(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                sid = (await client.create_session(**PARAMS))["session_id"]
                await client.submit(sid, _wave("q", 3))
                await client.advance(sid, until=600.0)
            finally:
                await client.close()

        async def second_life(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                ready = await client.readyz()
                assert ready["recovered"] == 1
                assert ready["quarantined"] == 1
                assert (state / "session-0042.json.quarantined").exists()
                # The surviving session still works.
                [session] = await client.list_sessions()
                await client.advance(session["session_id"], until=1200.0)
            finally:
                await client.close()

        asyncio.run(_with_server(first_life, state_dir=state))
        # A torn write lands between the two lives (as a crash mid-save
        # would leave, were saves not atomic — or an operator's stray file).
        (state / "session-0042.json").write_text("{torn mid-write")
        asyncio.run(_with_server(second_life, state_dir=state))

    def test_unrebuildable_session_quarantined_not_fatal(self, tmp_path):
        # A file that parses and passes its checksum but cannot rebuild a
        # session (bogus params) must cost one session, not the boot.
        state = tmp_path / "state"
        blob = SimulationSession(PARAMS).snapshot_bytes()
        SessionStore(state).save("session-0009", {"schedulr": "typo"}, blob)

        async def body(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                ready = await client.readyz()
                assert ready["quarantined"] == 1
                assert ready["recovered"] == 0
                assert await client.list_sessions() == []
                assert (state / "session-0009.json.quarantined").exists()
            finally:
                await client.close()

        asyncio.run(_with_server(body, state_dir=state))

    def test_health_probes_report_durability(self, tmp_path):
        async def durable(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                assert (await client.healthz())["durable"] is True
                assert (await client.readyz())["status"] == "ready"
            finally:
                await client.close()

        async def ephemeral(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                assert (await client.healthz())["durable"] is False
            finally:
                await client.close()

        asyncio.run(_with_server(durable, state_dir=tmp_path / "state"))
        asyncio.run(_with_server(ephemeral))


# ----------------------------------------------------------------------
# Idempotent retries
# ----------------------------------------------------------------------
class _DropAfterDelivery(AsyncServiceClient):
    """A client whose connection 'dies' right after the first delivery of
    a matching request — after the server processed it, before the client
    read the result.  The transport retry must re-send with the SAME
    idempotency key and collect the original operation's result."""

    def __init__(self, host, port, drop_on: str):
        super().__init__(host, port)
        self.drop_on = drop_on
        self.deliveries = 0
        self.dropped = False

    async def _send_once(self, method, path, body, extra_headers):
        result = await super()._send_once(method, path, body, extra_headers)
        if self.drop_on in path:
            self.deliveries += 1
            if not self.dropped:
                self.dropped = True
                await self.close()
                raise ConnectionError("injected drop after delivery")
        return result


class TestIdempotentRetries:
    def test_retried_submit_does_not_double_submit(self, tmp_path):
        async def body(server):
            setup = AsyncServiceClient(server.host, server.port)
            flaky = _DropAfterDelivery(server.host, server.port, drop_on="/submit")
            try:
                sid = (await setup.create_session(**PARAMS))["session_id"]
                wave = _wave("retry", 5)
                result = await flaky.submit(sid, wave)
                # Two deliveries on the wire, one submission in the session.
                assert flaky.deliveries == 2
                assert result["accepted"] == [t["task_id"] for t in wave]
                status = await setup.status(sid)
                assert status["submitted_tasks"] == len(wave)
            finally:
                await setup.close()
                await flaky.close()

        asyncio.run(_with_server(body, state_dir=tmp_path / "state"))

    def test_duplicate_delivery_coalesces_on_server(self):
        # Same body, same key, delivered twice: one execution, one result.
        async def body(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                sid = (await client.create_session(**PARAMS))["session_id"]
                wave = _wave("dup", 4)
                payload = json.dumps({"tasks": wave}).encode("utf-8")
                headers = {"idempotency-key": "fixed-key-1"}
                path = f"/sessions/{sid}/submit"
                first = await server._dispatch("POST", path, payload, headers)
                second = await server._dispatch("POST", path, payload, headers)
                assert first == second
                assert first[0] == 200
                assert (await client.status(sid))["submitted_tasks"] == len(wave)
            finally:
                await client.close()

        asyncio.run(_with_server(body))

    def test_fresh_key_is_a_new_request(self):
        # The same duplicate submission under a NEW key is genuinely
        # re-executed — and correctly rejected as already submitted.
        async def body(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                sid = (await client.create_session(**PARAMS))["session_id"]
                wave = _wave("fresh", 3)
                await client.submit(sid, wave)
                with pytest.raises(ServiceError) as err:
                    await client.submit(sid, wave)
                assert err.value.status == 400
                assert "already submitted" in err.value.message
            finally:
                await client.close()

        asyncio.run(_with_server(body))

    def test_unkeyed_post_is_never_retried(self):
        async def body(server):
            client = AsyncServiceClient(server.host, server.port)
            attempts = {"count": 0}
            original = client._send_once

            async def always_fails(method, path, body, extra):
                attempts["count"] += 1
                raise ConnectionError("injected transport failure")

            client._send_once = always_fails
            try:
                with pytest.raises(ConnectionError):
                    await client._request("POST", "/sessions", PARAMS)
                assert attempts["count"] == 1  # no blind replay
                attempts["count"] = 0
                with pytest.raises(ConnectionError):
                    await client._request("GET", "/healthz")
                assert attempts["count"] == 1 + client.retries  # GET retries
            finally:
                client._send_once = original
                await client.close()

        asyncio.run(_with_server(body))


# ----------------------------------------------------------------------
# Per-request deadlines
# ----------------------------------------------------------------------
class TestRequestDeadline:
    def test_slow_advance_times_out_but_completes_serverside(self):
        async def body(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                sid = (await client.create_session(**PARAMS))["session_id"]
                await client.submit(sid, _wave("slow", 80))
                with pytest.raises(ServiceError) as err:
                    await client.advance(sid)  # full run: ~0.7s >> 150ms
                assert err.value.status == 504
                assert "deadline" in err.value.message
                # The operation was shielded, not cancelled: it finishes
                # server-side and the session ends up fully advanced.
                # While it runs, status polls queue behind the session
                # lock and 504 too — keep polling until it drains.
                status = None
                for _ in range(200):
                    try:
                        status = await client.status(sid)
                    except ServiceError as poll_err:
                        assert poll_err.status == 504
                        continue
                    if status["done"]:
                        break
                    await asyncio.sleep(0.05)
                assert status is not None and status["done"]
                assert status["submitted_tasks"] == 80
            finally:
                await client.close()

        asyncio.run(_with_server(body, request_timeout_s=0.15))

    def test_fast_requests_unaffected_by_deadline(self):
        async def body(server):
            client = AsyncServiceClient(server.host, server.port)
            try:
                assert (await client.healthz())["status"] == "ok"
                sid = (await client.create_session(**PARAMS))["session_id"]
                assert (await client.status(sid))["session_id"] == sid
            finally:
                await client.close()

        asyncio.run(_with_server(body, request_timeout_s=5.0))
