"""Unit tests for node capacity accounting and eviction history."""

import pytest

from repro.cluster import GPUModel, Node, TaskType, make_nodes
from tests.conftest import build_task


class TestNodeCapacity:
    def test_fresh_node_capacity(self, small_node):
        assert small_node.idle_gpus == 8
        assert small_node.free_capacity == pytest.approx(8.0)
        assert small_node.allocated_gpus == pytest.approx(0.0)
        assert small_node.allocation_rate == pytest.approx(0.0)

    def test_whole_gpu_pod_allocation(self, small_node):
        task = build_task(TaskType.HP, gpus_per_pod=4.0)
        indices = small_node.allocate_pod(task)
        assert len(indices) == 4
        assert small_node.idle_gpus == 4
        assert small_node.allocated_gpus == pytest.approx(4.0)
        assert small_node.hp_gpus == pytest.approx(4.0)
        assert small_node.spot_gpus == pytest.approx(0.0)

    def test_fractional_pod_allocation(self, small_node):
        task = build_task(TaskType.SPOT, gpus_per_pod=0.5)
        indices = small_node.allocate_pod(task)
        assert len(indices) == 1
        assert small_node.idle_gpus == 7
        assert small_node.free_capacity == pytest.approx(7.5)
        assert small_node.spot_gpus == pytest.approx(0.5)

    def test_fractional_packs_onto_partially_used_card(self, small_node):
        first = build_task(TaskType.SPOT, gpus_per_pod=0.5)
        second = build_task(TaskType.SPOT, gpus_per_pod=0.3)
        small_node.allocate_pod(first)
        small_node.allocate_pod(second)
        # Best-fit within the node packs the second task onto the same card.
        assert small_node.idle_gpus == 7

    def test_cannot_overallocate(self, small_node):
        big = build_task(TaskType.HP, gpus_per_pod=8.0)
        small_node.allocate_pod(big)
        more = build_task(TaskType.HP, gpus_per_pod=1.0)
        assert not small_node.can_fit_pod(1.0)
        with pytest.raises(ValueError):
            small_node.allocate_pod(more)

    def test_release_restores_capacity_and_type_counters(self, small_node):
        task = build_task(TaskType.SPOT, gpus_per_pod=2.0)
        small_node.allocate_pod(task)
        freed = small_node.release_task(task.task_id)
        assert freed == pytest.approx(2.0)
        assert small_node.idle_gpus == 8
        assert small_node.spot_gpus == pytest.approx(0.0)

    def test_max_pods_whole_and_fractional(self, small_node):
        assert small_node.max_pods(2.0) == 4
        assert small_node.max_pods(8.0) == 1
        assert small_node.max_pods(0.5) == 16

    def test_running_task_ids_by_type(self, small_node):
        hp = build_task(TaskType.HP, gpus_per_pod=1.0)
        spot = build_task(TaskType.SPOT, gpus_per_pod=1.0)
        small_node.allocate_pod(hp)
        small_node.allocate_pod(spot)
        assert set(small_node.running_task_ids()) == {hp.task_id, spot.task_id}
        assert small_node.running_task_ids(TaskType.HP) == [hp.task_id]
        assert small_node.running_task_ids(TaskType.SPOT) == [spot.task_id]

    def test_snapshot_contains_consistent_numbers(self, small_node):
        task = build_task(TaskType.HP, gpus_per_pod=3.0)
        small_node.allocate_pod(task)
        snap = small_node.snapshot()
        assert snap["idle_gpus"] == 5
        assert snap["hp_gpus"] == pytest.approx(3.0)
        assert snap["allocation_rate"] == pytest.approx(3.0 / 8.0)


class TestEvictionHistory:
    def test_eviction_counts_by_window(self, small_node):
        small_node.record_eviction(100.0)
        small_node.record_eviction(5000.0)
        small_node.record_eviction(9000.0)
        now = 9100.0
        # Only the 9000s eviction falls inside the trailing hour.
        assert small_node.eviction_count_since(now, 3600.0) == 1
        assert small_node.eviction_count_since(now, 2 * 3600.0) == 2
        assert small_node.eviction_count_since(now, 24 * 3600.0) == 3

    def test_no_evictions(self, small_node):
        assert small_node.eviction_count_since(1000.0, 3600.0) == 0


class TestNodeValidation:
    def test_zero_gpu_node_rejected(self):
        with pytest.raises(ValueError):
            Node(node_id="bad", gpu_model=GPUModel.A10, num_gpus=0)

    def test_make_nodes_naming_and_count(self):
        nodes = make_nodes(3, GPUModel.H800, gpus_per_node=8, cluster_label="test")
        assert len(nodes) == 3
        assert len({n.node_id for n in nodes}) == 3
        assert all(n.gpu_model is GPUModel.H800 for n in nodes)
