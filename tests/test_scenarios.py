"""Tests for the workload scenario library and registry."""

import numpy as np
import pytest

from repro.cluster import GPUModel
from repro.workloads import (
    Scenario,
    Trace,
    generate_trace,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)

#: Tiny generation parameters shared by the per-scenario validity checks.
GPUS, HOURS, SEED = 96.0, 8.0, 5


def build(name: str, spot_scale: float = 2.0) -> Trace:
    return get_scenario(name).build_trace(
        cluster_gpus=GPUS, duration_hours=HOURS, spot_scale=spot_scale, seed=SEED
    )


class TestRegistry:
    def test_builtin_catalog_present(self):
        names = scenario_names()
        assert {"default", "burst", "diurnal", "hetero", "org_skew",
                "spot_heavy", "large_gang"} <= set(names)
        assert len(names) >= 6

    def test_lookup_normalises_name(self):
        assert get_scenario("ORG-SKEW").name == "org_skew"

    def test_unknown_scenario_raises_with_catalog(self):
        with pytest.raises(KeyError, match="default"):
            get_scenario("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(Scenario(name="default", summary="dup"))

    def test_custom_registration_roundtrip(self):
        scenario = Scenario(name="test_tmp_scenario", summary="unit-test only")
        register_scenario(scenario, replace_existing=True)
        assert get_scenario("test_tmp_scenario") is scenario
        assert scenario in list(iter_scenarios())


class TestEveryScenarioGeneratesValidTraces:
    @pytest.mark.parametrize("name", sorted(
        {"default", "burst", "diurnal", "hetero", "org_skew", "spot_heavy", "large_gang"}
    ))
    def test_valid_trace(self, name):
        trace = build(name)
        assert len(trace) > 0
        stats = trace.statistics()
        assert stats.num_hp > 0 and stats.num_spot > 0
        submits = [t.submit_time for t in trace.sorted_tasks()]
        assert submits == sorted(submits)
        assert all(0.0 <= s <= HOURS * 3600.0 for s in submits)
        assert all(t.duration > 0 for t in trace.tasks)
        assert trace.org_history and all(
            len(series) >= 24 for series in trace.org_history.values()
        )
        assert trace.metadata["scenario"] == name

    @pytest.mark.parametrize("name", ["default", "burst", "large_gang"])
    def test_deterministic_in_seed(self, name):
        a, b = build(name), build(name)
        assert [t.submit_time for t in a.tasks] == [t.submit_time for t in b.tasks]
        assert [t.gpus_per_pod for t in a.tasks] == [t.gpus_per_pod for t in b.tasks]


class TestScenarioShapes:
    def test_default_matches_plain_generator(self):
        base = generate_trace(cluster_gpus=GPUS, duration_hours=HOURS, spot_scale=2.0, seed=SEED)
        scen = build("default")
        key = lambda t: (t.submit_time, t.duration, t.num_pods, t.gpus_per_pod, t.org)
        assert [key(t) for t in base.tasks] == [key(t) for t in scen.tasks]

    def test_burst_concentrates_arrivals(self):
        scenario = get_scenario("burst")
        config = scenario.build_config(512.0, 24.0, spot_scale=2.0, seed=SEED)
        assert config.arrival_burst_period == 6
        trace = scenario.build_trace(512.0, 24.0, spot_scale=2.0, seed=SEED)
        counts = np.zeros(24)
        for task in trace.tasks:
            counts[int(task.submit_time // 3600.0) % 24] += 1
        burst_hours = counts[::6]
        other_hours = np.delete(counts, range(0, 24, 6))
        assert burst_hours.mean() > 2.0 * other_hours.mean()

    def test_diurnal_orgs_peak_apart(self):
        orgs = get_scenario("diurnal").org_builder(SEED)
        centres = sorted((sum(o.peak_hours) / 2.0) % 24 for o in orgs)
        assert len(set(centres)) == len(centres)
        assert max(centres) - min(centres) >= 12.0

    def test_hetero_cluster_and_model_agnostic_tasks(self):
        scenario = get_scenario("hetero")
        cluster = scenario.build_cluster(num_nodes=8)
        models = {node.gpu_model for node in cluster.nodes}
        assert len(models) >= 3
        assert len(cluster.nodes) == 8
        trace = build("hetero")
        assert all(t.gpu_model is None for t in trace.tasks)

    def test_homogeneous_cluster_for_plain_scenarios(self):
        cluster = get_scenario("default").build_cluster(4, 8, GPUModel.A100)
        assert {n.gpu_model for n in cluster.nodes} == {GPUModel.A100}

    @pytest.mark.parametrize("num_nodes", [1, 2, 3, 4, 8, 17])
    def test_hetero_cluster_respects_node_budget(self, num_nodes):
        # Small budgets must never over-build or drop the dominant model:
        # exactly num_nodes nodes, models filled in mix order.
        scenario = get_scenario("hetero")
        cluster = scenario.build_cluster(num_nodes=num_nodes)
        assert len(cluster.nodes) == num_nodes
        models = {n.gpu_model for n in cluster.nodes}
        assert GPUModel.A100 in models  # first (dominant) entry of the mix
        if num_nodes >= len(scenario.fleet_mix):
            assert len(models) == len(scenario.fleet_mix)

    def test_org_skew_concentrates_demand(self):
        trace = build("org_skew")
        counts = {}
        for task in trace.hp_tasks:
            counts[task.org] = counts.get(task.org, 0) + 1
        top = max(counts.values())
        assert top / sum(counts.values()) > 0.5

    def test_spot_heavy_is_spot_dominated(self):
        stats = build("spot_heavy", spot_scale=1.0).statistics()
        default_stats = build("default", spot_scale=1.0).statistics()
        assert stats.num_spot > stats.num_hp
        assert stats.num_spot > default_stats.num_spot

    def test_large_gang_raises_gang_fractions(self):
        # Larger trace than the shared tiny one: gang fractions are sampled,
        # so comparisons need a few hundred tasks to be stable.
        big = lambda name: get_scenario(name).build_trace(
            cluster_gpus=1024.0, duration_hours=24.0, spot_scale=2.0, seed=SEED
        )
        stats = big("large_gang").statistics()
        default_stats = big("default").statistics()
        assert stats.hp_gang_fraction > default_stats.hp_gang_fraction
        assert stats.spot_gang_fraction > default_stats.spot_gang_fraction
        gangs = [t for t in big("large_gang").tasks if t.gang]
        assert gangs and all(4 <= t.num_pods <= 8 for t in gangs)
