"""Shared fixtures for the test suite."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.cluster import Cluster, GPUModel, Node, Task, TaskType, make_task, reset_task_counter
from repro.workloads import (
    WorkloadConfig,
    SyntheticTraceGenerator,
    default_organizations,
    generate_org_demand_matrix,
)


@pytest.fixture(autouse=True)
def _reset_task_ids():
    """Keep auto-generated task ids deterministic within each test."""
    reset_task_counter()
    yield


@pytest.fixture
def small_node() -> Node:
    return Node(node_id="node-0", gpu_model=GPUModel.A100, num_gpus=8)


@pytest.fixture
def small_cluster() -> Cluster:
    return Cluster.homogeneous(num_nodes=4, gpus_per_node=8, gpu_model=GPUModel.A100)


@pytest.fixture
def medium_cluster() -> Cluster:
    return Cluster.homogeneous(num_nodes=16, gpus_per_node=8, gpu_model=GPUModel.A100)


def build_task(
    task_type: TaskType = TaskType.SPOT,
    num_pods: int = 1,
    gpus_per_pod: float = 1.0,
    duration: float = 3600.0,
    submit_time: float = 0.0,
    **kwargs,
) -> Task:
    """Helper used across tests to create tasks tersely."""
    return make_task(
        task_type=task_type,
        num_pods=num_pods,
        gpus_per_pod=gpus_per_pod,
        duration=duration,
        submit_time=submit_time,
        **kwargs,
    )


@pytest.fixture
def hp_task() -> Task:
    return build_task(TaskType.HP, num_pods=1, gpus_per_pod=8.0, duration=7200.0)


@pytest.fixture
def spot_task() -> Task:
    return build_task(TaskType.SPOT, num_pods=1, gpus_per_pod=1.0, duration=3600.0)


@pytest.fixture
def org_history() -> dict:
    orgs = default_organizations()
    return generate_org_demand_matrix(orgs, hours=14 * 24, seed=1)


@pytest.fixture
def tiny_trace():
    """A small but non-trivial synthetic trace for integration tests."""
    config = WorkloadConfig(
        cluster_gpus=128.0,
        duration_hours=8.0,
        spot_scale=2.0,
        seed=5,
        history_hours=7 * 24,
    )
    return SyntheticTraceGenerator(config).generate()


def _values_identical(a, b) -> bool:
    """Exact equality that treats NaN == NaN and descends into containers."""
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if dataclasses.is_dataclass(a) and dataclasses.is_dataclass(b):
        return type(a) is type(b) and all(
            _values_identical(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_values_identical(x, y) for x, y in zip(a, b))
    return a == b


def assert_metrics_identical(new, old, label: str = "") -> None:
    """Field-by-field bit-identity of two SimulationMetrics bundles.

    Plain ``==`` is wrong for this job: empty task classes carry NaN
    means, and NaN != NaN would flag identical bundles as divergent.
    """
    for field in dataclasses.fields(old):
        new_value, old_value = getattr(new, field.name), getattr(old, field.name)
        assert _values_identical(new_value, old_value), (
            f"[{label}] {field.name}: {new_value!r} != {old_value!r}"
        )


# Re-export for tests that import from conftest.
__all__ = ["assert_metrics_identical", "build_task"]
