"""Tests for the capacity index and the per-pass placement context.

Covers the PR-4 satellite edge cases — fractional pods sharing nodes with
whole-GPU pods, ``virtually_preempt`` rounding at the ``EPSILON``
boundary — plus a hypothesis property pinning the core index invariant:
the indexed candidate set always equals the brute-force feasible set, in
canonical node order, under both feasibility semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, GPUModel, PodPlacement, TaskType
from repro.cluster.gpu import EPSILON
from repro.schedulers.placement import NodeView, PlacementContext, find_placement
from tests.conftest import build_task


@pytest.fixture
def cluster():
    return Cluster.homogeneous(4, 8, GPUModel.A100)


# ----------------------------------------------------------------------
# Fractional pods sharing nodes with whole-GPU pods
# ----------------------------------------------------------------------
class TestFractionalWholeSharing:
    def test_fractional_fit_uses_single_card_not_aggregate(self, cluster):
        node = cluster.nodes[0]
        node.allocate_pod(build_task(TaskType.HP, gpus_per_pod=7.0))
        node.allocate_pod(build_task(TaskType.SPOT, gpus_per_pod=0.25))
        assert node.idle_gpus == 0
        assert node.free_capacity == pytest.approx(0.75)
        assert node.max_card_free == pytest.approx(0.75)
        index = cluster.capacity_index
        # Single-card semantics: a 0.75 sliver fits, a 0.8 one does not.
        assert node in index.node_fit_candidates(GPUModel.A100, 0.75)
        assert node not in index.node_fit_candidates(GPUModel.A100, 0.8)
        # Aggregate (view) semantics agree here because one card holds all
        # the free capacity.
        assert node in index.view_fit_candidates(GPUModel.A100, 0.75)
        assert node not in index.view_fit_candidates(GPUModel.A100, 0.8)

    def test_fragmented_slivers_diverge_between_semantics(self, cluster):
        node = cluster.nodes[0]
        # Occupy 0.6 of every card: aggregate free is 3.2, but no single
        # card can host more than 0.4.
        for _ in range(8):
            node.allocate_pod(build_task(TaskType.SPOT, gpus_per_pod=0.6))
        assert node.idle_gpus == 0
        assert node.max_card_free == pytest.approx(0.4)
        index = cluster.capacity_index
        assert node not in index.node_fit_candidates(GPUModel.A100, 0.5)
        assert node in index.view_fit_candidates(GPUModel.A100, 0.5)
        # And no whole-GPU pod fits despite 3.2 free GPUs of capacity.
        assert node not in index.node_fit_candidates(GPUModel.A100, 1.0)

    def test_whole_pod_blocked_by_fractional_neighbours(self, cluster):
        # Every node keeps plenty of aggregate free capacity, but a 0.6
        # sliver on each card (too big to share a card with another) leaves
        # zero idle cards: the idle-GPU gate must reject a whole-GPU task
        # without a greedy loop (and certainly without a placement).
        for node in cluster.nodes:
            for _ in range(8):
                node.allocate_pod(build_task(TaskType.SPOT, gpus_per_pod=0.6))
        assert cluster.idle_gpus() == pytest.approx(4 * 8 * 0.4)
        assert cluster.capacity_index.max_idle_gpus(GPUModel.A100) == 0
        assert cluster.capacity_index.total_idle_gpus(GPUModel.A100) == 0
        task = build_task(TaskType.HP, num_pods=2, gpus_per_pod=1.0)
        assert find_placement(task, cluster.nodes) is None
        assert PlacementContext(cluster).find_placement(task) is None

    def test_gang_gated_on_idle_aggregate_not_free_sum(self, cluster):
        # 4 nodes x 2 idle cards = 8 idle GPUs, but a 4-pod gang of
        # 4-GPU pods (16 GPUs) needs sum(idle_i // 4) >= 4 which is 0.
        for node in cluster.nodes:
            node.allocate_pod(build_task(TaskType.HP, gpus_per_pod=6.0))
        task = build_task(TaskType.HP, num_pods=4, gpus_per_pod=2.0)
        placed = find_placement(task, cluster.nodes)
        assert placed is not None  # 2-GPU pods still fit, one per node
        big = build_task(TaskType.HP, num_pods=4, gpus_per_pod=4.0)
        assert find_placement(big, cluster.nodes) is None
        assert PlacementContext(cluster).find_placement(big) is None


# ----------------------------------------------------------------------
# virtually_preempt rounding at the EPSILON boundary
# ----------------------------------------------------------------------
class TestVirtualPreemptEpsilonBoundary:
    def _preempt(self, cluster, gpus_held: float):
        node = cluster.nodes[0]
        victim = build_task(TaskType.SPOT, gpus_per_pod=1.0)
        node.task_shares[victim.task_id] = [(0, gpus_held)]
        view = NodeView.from_node(node)
        before_idle = view.idle_gpus
        view.virtually_preempt(victim)
        return view, before_idle

    def test_just_below_whole_boundary_frees_no_idle_card(self, cluster):
        held = 1.0 - 2 * EPSILON  # < 1.0 - EPSILON: stays fractional
        view, before_idle = self._preempt(cluster, held)
        assert view.idle_gpus == before_idle
        assert view.free_capacity == pytest.approx(8.0 + held)
        assert view.reclaimed_gpus == pytest.approx(held)

    def test_at_whole_boundary_frees_an_idle_card(self, cluster):
        held = 1.0 - EPSILON / 2  # >= 1.0 - EPSILON: rounds to one card
        view, before_idle = self._preempt(cluster, held)
        assert view.idle_gpus == before_idle + 1
        assert view.free_capacity == pytest.approx(8.0 + held)

    def test_multi_card_holding_rounds_once_on_the_sum(self, cluster):
        node = cluster.nodes[0]
        victim = build_task(TaskType.SPOT, gpus_per_pod=1.0)
        node.task_shares[victim.task_id] = [(0, 0.5), (1, 0.5 - EPSILON / 4)]
        view = NodeView.from_node(node)
        view.virtually_preempt(victim)
        # The summed holding is within EPSILON of 1.0, so one idle card is
        # reclaimed even though neither share alone crosses the boundary.
        assert view.idle_gpus == 9


# ----------------------------------------------------------------------
# Property: indexed candidates == brute-force feasible set
# ----------------------------------------------------------------------
POD_SIZES = (0.25, 0.4, 0.5, 0.75, 1.0, 2.0, 3.0, 4.0, 8.0)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_indexed_candidates_equal_brute_force(data):
    node_counts = data.draw(
        st.tuples(st.integers(1, 5), st.integers(0, 4)), label="nodes per model"
    )
    from repro.cluster.node import make_nodes

    nodes = make_nodes(node_counts[0], GPUModel.A100, 4, "prop", prefix="a100")
    if node_counts[1]:
        nodes += make_nodes(node_counts[1], GPUModel.H800, 4, "prop", prefix="h800")
    cluster = Cluster(nodes)
    index = cluster.capacity_index

    # Random mutation trace: allocations and releases through the real
    # node API, so the index is maintained purely by the listener.
    live = []
    ops = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, len(nodes) - 1),
                st.sampled_from(POD_SIZES[:8]),
                st.booleans(),
                st.booleans(),
            ),
            max_size=40,
        ),
        label="ops",
    )
    for node_index, size, spot, release in ops:
        node = cluster.nodes[node_index]
        if release and live:
            victim_node, victim_id = live.pop(0)
            victim_node.release_task(victim_id)
            continue
        if node.can_fit_pod(size):
            task = build_task(TaskType.SPOT if spot else TaskType.HP, gpus_per_pod=size)
            node.allocate_pod(task)
            live.append((node, task.task_id))

    index.validate(cluster.nodes)
    for model in (GPUModel.A100, GPUModel.H800, None):
        for size in POD_SIZES:
            for semantics, query in (
                ("node", index.node_fit_candidates),
                ("view", index.view_fit_candidates),
            ):
                got = query(model, size)
                want = index.brute_force_candidates(cluster.nodes, model, size, semantics)
                assert got == want, (
                    f"{semantics} candidates for model={model} size={size}: "
                    f"{[n.node_id for n in got]} != {[n.node_id for n in want]}"
                )
        spot_want = [
            n
            for n in cluster.nodes
            if n.spot_gpus > 0.0 and (model is None or n.gpu_model is model)
        ]
        assert index.spot_nodes(model) == spot_want


# ----------------------------------------------------------------------
# PlacementContext behaviour
# ----------------------------------------------------------------------
class TestPlacementContext:
    def test_base_views_refresh_after_mutation(self, cluster):
        ctx = PlacementContext(cluster)
        node = cluster.nodes[0]
        view = ctx.base_view(node)
        assert view.idle_gpus == 8
        node.allocate_pod(build_task(TaskType.HP, gpus_per_pod=3.0))
        refreshed = ctx.base_view(node)
        assert refreshed.idle_gpus == 5
        # Unmutated nodes keep the cached object (no per-task rebuild).
        other = cluster.nodes[1]
        assert ctx.base_view(other) is ctx.base_view(other)

    def test_failed_shape_memo_hits_until_capacity_grows(self, cluster):
        ctx = PlacementContext(cluster)
        task = build_task(TaskType.HP, num_pods=5, gpus_per_pod=8.0)
        assert ctx.find_placement(task) is None
        assert ctx.infeasible(task, "default")
        # Same shape, different task object: still memoised.
        twin = build_task(TaskType.HP, num_pods=5, gpus_per_pod=8.0)
        assert ctx.infeasible(twin, "default")
        # Freeing capacity anywhere invalidates the memo.
        blocker = build_task(TaskType.SPOT, gpus_per_pod=1.0)
        cluster.place_task(blocker, [PodPlacement(node_id=cluster.nodes[0].node_id, gpu_indices=())])
        assert ctx.infeasible(twin, "default")  # allocation only shrank capacity
        cluster.remove_task(blocker)
        assert not ctx.infeasible(twin, "default")

    def test_spot_tracked_memo_invalidated_by_spot_placement(self, cluster):
        ctx = PlacementContext(cluster)
        task = build_task(TaskType.HP, num_pods=5, gpus_per_pod=8.0)
        ctx.note_failure(task, "preempt", track_spot=True)
        assert ctx.infeasible(task, "preempt", track_spot=True)
        # A freshly placed spot task is a new preemption victim: retry.
        spot = build_task(TaskType.SPOT, gpus_per_pod=1.0)
        cluster.place_task(spot, [PodPlacement(node_id=cluster.nodes[0].node_id, gpu_indices=())])
        assert not ctx.infeasible(task, "preempt", track_spot=True)

    def test_begin_pass_clears_memo(self, cluster):
        ctx = PlacementContext(cluster)
        task = build_task(TaskType.HP, num_pods=5, gpus_per_pod=8.0)
        ctx.note_failure(task, "default")
        ctx.begin_pass()
        assert not ctx.infeasible(task, "default")

    def test_pools_are_isolated(self, cluster):
        ctx = PlacementContext(cluster)
        task = build_task(TaskType.HP, gpus_per_pod=1.0)
        ctx.note_failure(task, "loaned")
        assert ctx.infeasible(task, "loaned")
        assert not ctx.infeasible(task, "all")

    def test_context_matches_free_function(self, cluster):
        cluster.nodes[1].allocate_pod(build_task(TaskType.HP, gpus_per_pod=6.0))
        cluster.nodes[2].allocate_pod(build_task(TaskType.SPOT, gpus_per_pod=0.5))
        ctx = PlacementContext(cluster)
        for num_pods, size in ((1, 8.0), (2, 2.0), (1, 0.5), (3, 8.0), (2, 0.25), (5, 8.0)):
            task = build_task(TaskType.HP, num_pods=num_pods, gpus_per_pod=size)
            assert ctx.find_placement(task, memo=False) == find_placement(task, cluster.nodes)

    def test_search_does_not_mutate_base_views(self, cluster):
        ctx = PlacementContext(cluster)
        task = build_task(TaskType.HP, num_pods=2, gpus_per_pod=8.0)
        assert ctx.find_placement(task) is not None
        assert all(ctx.base_view(n).idle_gpus == 8 for n in cluster.nodes)
