"""Tests for OrgLinear, the forecasting baselines and forecast metrics."""

import numpy as np
import pytest

from repro.core.gde import (
    AutoformerLiteModel,
    DLinearModel,
    DeepARLiteModel,
    FEDformerLiteModel,
    FORECASTING_BASELINES,
    ForecastEvaluation,
    InformerLiteModel,
    OrgLinear,
    OrgLinearConfig,
    PreviousWeekPeakModel,
    SeasonalNaiveModel,
    TransformerLiteModel,
    build_window_dataset,
    evaluate_forecast,
    mae,
    mape,
    maqe,
    mse,
    normal_icdf,
    rmse,
    train_test_split_dataset,
)
from repro.core.gde.training import AdamOptimizer, gaussian_nll, gaussian_nll_grads, softmax, softplus
from repro.workloads import DEFAULT_HOLIDAYS, default_organizations, generate_org_demand_matrix


@pytest.fixture(scope="module")
def datasets():
    orgs = default_organizations()
    history = generate_org_demand_matrix(orgs, 5 * 168, seed=2)
    attrs = {o.name: o.business_attributes() for o in orgs}
    dataset = build_window_dataset(
        history, attrs, input_length=168, horizon=24, stride=12, holidays=set(DEFAULT_HOLIDAYS)
    )
    return train_test_split_dataset(dataset, 0.3)


class TestForecastMetrics:
    def test_point_metrics_on_perfect_prediction(self):
        y = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert mae(y, y) == 0.0
        assert mse(y, y) == 0.0
        assert rmse(y, y) == 0.0
        assert mape(y, y) == 0.0

    def test_metric_values(self):
        y = np.array([10.0, 20.0])
        pred = np.array([12.0, 16.0])
        assert mae(y, pred) == pytest.approx(3.0)
        assert mse(y, pred) == pytest.approx(10.0)
        assert rmse(y, pred) == pytest.approx(np.sqrt(10.0))
        assert mape(y, pred) == pytest.approx(0.2)

    def test_normal_icdf_monotone_in_p(self):
        mu, sigma = np.array([10.0]), np.array([2.0])
        assert normal_icdf(0.95, mu, sigma)[0] > normal_icdf(0.9, mu, sigma)[0] > mu[0]

    def test_normal_icdf_invalid_p(self):
        with pytest.raises(ValueError):
            normal_icdf(1.5, np.zeros(1), np.ones(1))

    def test_maqe_normalised(self):
        y = np.array([100.0, 100.0])
        q = np.array([110.0, 90.0])
        assert maqe(y, q) == pytest.approx(0.1)

    def test_evaluate_forecast_bundle(self):
        y = np.array([[10.0, 12.0]])
        mu = np.array([[11.0, 11.0]])
        sigma = np.array([[1.0, 1.0]])
        ev = evaluate_forecast(y, mu, sigma, training_time=1.5)
        assert isinstance(ev, ForecastEvaluation)
        assert ev.training_time == 1.5
        assert ev.maqe_95 > 0


class TestTrainingUtilities:
    def test_adam_reduces_quadratic_loss(self):
        params = {"w": np.array([5.0])}
        optimiser = AdamOptimizer(learning_rate=0.1)
        for _ in range(200):
            grads = {"w": 2 * params["w"]}
            optimiser.update(params, grads)
        assert abs(params["w"][0]) < 0.1

    def test_adam_unknown_parameter(self):
        with pytest.raises(KeyError):
            AdamOptimizer().update({"a": np.zeros(1)}, {"b": np.zeros(1)})

    def test_gaussian_nll_minimised_at_truth(self):
        y = np.array([[1.0]])
        good = gaussian_nll(y, np.array([[1.0]]), np.array([[0.5]]))
        bad = gaussian_nll(y, np.array([[3.0]]), np.array([[0.5]]))
        assert good < bad

    def test_gaussian_nll_grads_shapes_and_signs(self):
        y = np.array([[1.0, 2.0]])
        mu = np.array([[2.0, 1.0]])
        sigma = np.array([[1.0, 1.0]])
        dmu, dsigma = gaussian_nll_grads(y, mu, sigma)
        assert dmu.shape == y.shape
        assert dmu[0, 0] > 0 and dmu[0, 1] < 0

    def test_softplus_and_softmax(self):
        assert softplus(np.array([0.0]))[0] == pytest.approx(np.log(2.0))
        weights = softmax(np.array([1.0, 1.0, 1.0]))
        assert np.allclose(weights, 1.0 / 3.0)


class TestOrgLinear:
    def test_training_reduces_loss(self, datasets):
        train, _ = datasets
        model = OrgLinear(OrgLinearConfig(epochs=15)).fit(train)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_prediction_shapes_and_positive_sigma(self, datasets):
        train, test = datasets
        model = OrgLinear(OrgLinearConfig(epochs=10)).fit(train)
        mu, sigma = model.predict(test)
        y = test.arrays()["Y"]
        assert mu.shape == y.shape
        assert np.all(sigma > 0)

    def test_reasonable_accuracy(self, datasets):
        train, test = datasets
        model = OrgLinear(OrgLinearConfig(epochs=40)).fit(train)
        mu, sigma = model.predict(test)
        y = test.arrays()["Y"]
        ev = evaluate_forecast(y, mu, sigma)
        assert ev.mape < 0.15  # single-digit percentage error on synthetic data

    def test_beats_previous_week_peak(self, datasets):
        train, test = datasets
        y = test.arrays()["Y"]
        orglinear = OrgLinear(OrgLinearConfig(epochs=40)).fit(train)
        naive = PreviousWeekPeakModel().fit(train)
        ev_org = evaluate_forecast(y, *orglinear.predict(test))
        ev_naive = evaluate_forecast(y, *naive.predict(test))
        assert ev_org.mae < ev_naive.mae

    def test_predict_before_fit_raises(self, datasets):
        _, test = datasets
        with pytest.raises(RuntimeError):
            OrgLinear().predict(test)

    def test_deterministic_given_seed(self, datasets):
        train, test = datasets
        a = OrgLinear(OrgLinearConfig(epochs=5, seed=3)).fit(train).predict(test)[0]
        b = OrgLinear(OrgLinearConfig(epochs=5, seed=3)).fit(train).predict(test)[0]
        assert np.allclose(a, b)


class TestBaselines:
    @pytest.mark.parametrize(
        "model_cls",
        [
            DLinearModel,
            DeepARLiteModel,
            TransformerLiteModel,
            InformerLiteModel,
            AutoformerLiteModel,
            FEDformerLiteModel,
            PreviousWeekPeakModel,
            SeasonalNaiveModel,
        ],
    )
    def test_fit_predict_shapes(self, model_cls, datasets):
        train, test = datasets
        model = model_cls()
        model.fit(train)
        mu, sigma = model.predict(test)
        y = test.arrays()["Y"]
        assert mu.shape == y.shape
        assert np.all(sigma > 0)
        assert model.training_time >= 0.0

    def test_registry_contains_the_six_figure10_baselines(self):
        assert set(FORECASTING_BASELINES) == {
            "Transformer",
            "Informer",
            "Autoformer",
            "FEDformer",
            "DLinear",
            "DeepAR",
        }

    def test_dlinear_better_than_seasonal_naive(self, datasets):
        train, test = datasets
        y = test.arrays()["Y"]
        dlinear = DLinearModel().fit(train)
        naive = SeasonalNaiveModel().fit(train)
        assert evaluate_forecast(y, *dlinear.predict(test)).mae <= evaluate_forecast(
            y, *naive.predict(test)
        ).mae * 1.1
