"""Snapshot / restore / fork correctness (streaming service mode).

The service's what-if advice and session persistence are only sound if
a snapshot really captures *everything*: restore at an arbitrary mid-run
point and the continuation must be bit-identical to the uninterrupted
run — including restarts taken mid-dynamics-outage (nodes offline, kill
accounting half-accumulated) and with same-timestamp ties sitting
unprocessed in the event heap.  Forks must be perfectly isolated: a
fully-advanced fork must not move the live simulator by one bit.

All round-trip tests run with ``REPRO_VALIDATE_AGGREGATES`` enabled, so
a restored cluster whose O(1) aggregates drifted from its node state
fails loudly inside the run, not just at the final metric compare.

The service's wire envelope (versioned + checksummed, see
:mod:`repro.service.snapshot`) is covered at the bottom: every
corruption mode must collapse into ``SnapshotError`` before unpickling.
"""

from __future__ import annotations

import pytest

from tests.conftest import assert_metrics_identical, build_task
from tests.test_stepping_determinism import DURATION_HOURS, SCHEDULERS, build_sim
from repro.cluster.simulator import ClusterSimulator, SimulationError
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    decode_snapshot,
    encode_snapshot,
    snapshot_from_text,
    snapshot_to_text,
)


@pytest.fixture(autouse=True)
def _validate_aggregates(monkeypatch):
    """Run every cluster in this file with aggregate self-validation on."""
    monkeypatch.setenv("REPRO_VALIDATE_AGGREGATES", "1")


def _roundtrip_continue(scheduler_kind: str, scenario: str, stop_time: float):
    """Advance to ``stop_time``, snapshot, restore, drain the restored sim."""
    sim = build_sim(scheduler_kind, scenario)
    sim.advance(until=stop_time)
    blob = sim.snapshot()
    restored = ClusterSimulator.restore(blob)
    restored.advance()
    return restored.finalize()


# ----------------------------------------------------------------------
# Round-trip == uninterrupted, at arbitrary stop points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fraction", [0.0, 0.15, 0.5, 0.85, 1.2])
def test_snapshot_roundtrip_at_arbitrary_points(fraction):
    batch = build_sim("gfs").run()
    stop = DURATION_HOURS * 3600.0 * fraction
    continued = _roundtrip_continue("gfs", "default", stop)
    assert_metrics_identical(continued, batch, f"roundtrip@{fraction}")


@pytest.mark.parametrize("scheduler_kind", SCHEDULERS)
def test_snapshot_roundtrip_every_scheduler_family(scheduler_kind):
    """Every registry scheduler (RNGs, SQA/GDE state, PTS caches) must
    survive pickling mid-run."""
    batch = build_sim(scheduler_kind, "hetero").run()
    continued = _roundtrip_continue(scheduler_kind, "hetero", DURATION_HOURS * 1800.0)
    assert_metrics_identical(continued, batch, f"roundtrip/{scheduler_kind}")


def test_snapshot_roundtrip_mid_dynamics_outage():
    """Restore while nodes are offline and kills are half-accounted."""
    batch = build_sim("gfs", "node_churn").run()

    sim = build_sim("gfs", "node_churn")
    # Step until the fleet actually has an offline node, so the snapshot
    # catches a live outage window (not just the quiet state between).
    step = 1800.0
    while not sim.done and all(n.available for n in sim.cluster.nodes):
        sim.advance(until=sim.now + step)
    assert any(not n.available for n in sim.cluster.nodes), (
        "node_churn produced no outage to snapshot inside"
    )
    restored = ClusterSimulator.restore(sim.snapshot())
    assert any(not n.available for n in restored.cluster.nodes)
    restored.advance()
    assert_metrics_identical(restored.finalize(), batch, "mid-outage roundtrip")


def test_snapshot_roundtrip_with_heaped_same_timestamp_ties():
    """Snapshot taken while tied-timestamp events sit unprocessed."""
    def build(submit_late):
        sim = build_sim("gfs", submit=False)
        base = [
            build_task(duration=1800.0, submit_time=i * 600.0, gpus_per_pod=4.0, num_pods=2)
            for i in range(8)
        ]
        sim.submit_all(base)
        if submit_late:
            sim.submit(build_task(duration=900.0, submit_time=3600.0, gpus_per_pod=2.0,
                                  task_id="aaa-tied-id"))
        return sim

    reference = build(submit_late=True)
    batch = reference.run()

    sim = build(submit_late=False)
    sim.advance(until=3000.0)
    # The tie arrives mid-flight, then the snapshot catches it heaped
    # but unprocessed next to the equal-timestamp batch arrival.
    sim.submit(build_task(duration=900.0, submit_time=3600.0, gpus_per_pod=2.0,
                          task_id="aaa-tied-id"))
    restored = ClusterSimulator.restore(sim.snapshot())
    restored.advance()
    assert_metrics_identical(restored.finalize(), batch, "tied-heap roundtrip")


def test_double_restore_runs_are_independent_and_identical():
    sim = build_sim("fgd")
    sim.advance(until=DURATION_HOURS * 1800.0)
    blob = sim.snapshot()
    first = ClusterSimulator.restore(blob)
    second = ClusterSimulator.restore(blob)
    first.advance()
    second.advance()
    assert_metrics_identical(first.finalize(), second.finalize(), "double restore")


def test_restore_rejects_non_simulator_pickle():
    import pickle

    with pytest.raises(SimulationError):
        ClusterSimulator.restore(pickle.dumps({"not": "a simulator"}))


# ----------------------------------------------------------------------
# Fork isolation
# ----------------------------------------------------------------------
def test_fork_is_fully_isolated_from_live_simulator():
    """Draining a fork (incl. extra submissions) must not move the live
    sim: its continuation still matches the uninterrupted batch run."""
    batch = build_sim("gfs").run()

    live = build_sim("gfs")
    live.advance(until=DURATION_HOURS * 1200.0)
    pending_before = [t.task_id for t in live.pending]
    now_before = live.now

    fork = live.fork()
    fork.submit(build_task(duration=3600.0, submit_time=fork.now, gpus_per_pod=8.0,
                           task_id="whatif-probe"))
    fork.advance()
    assert fork.now >= now_before

    assert live.now == now_before
    assert [t.task_id for t in live.pending] == pending_before
    assert all(t.task_id != "whatif-probe" for t in live.all_tasks)
    live.advance()
    assert_metrics_identical(live.finalize(), batch, "live after fork drain")


def test_fork_of_restored_snapshot_matches_original_continuation():
    """fork → advance == restore → advance: both copies see one future."""
    sim = build_sim("chronus")
    sim.advance(until=DURATION_HOURS * 1800.0)
    blob = sim.snapshot()
    forked = sim.fork()
    forked.advance()
    restored = ClusterSimulator.restore(blob)
    restored.advance()
    assert_metrics_identical(forked.finalize(), restored.finalize(), "fork vs restore")


# ----------------------------------------------------------------------
# The service wire envelope
# ----------------------------------------------------------------------
def test_envelope_roundtrip_preserves_payload():
    raw = b"arbitrary snapshot payload" * 100
    assert decode_snapshot(encode_snapshot(raw)) == raw


def test_envelope_base64_roundtrip():
    raw = b"\x00\xffbinary"
    envelope = encode_snapshot(raw)
    assert snapshot_from_text(snapshot_to_text(envelope)) == envelope


@pytest.mark.parametrize(
    "mutilate, match",
    [
        (lambda e: e[: len(e) // 2], "checksum|short"),
        (lambda e: e[:10], "too short"),
        (lambda e: b"NOTSNAPS" + e[8:], "bad magic"),
        (lambda e: e[:8] + bytes([0, SNAPSHOT_VERSION + 1]) + e[10:], "version"),
        (lambda e: e[:-3] + b"xyz", "checksum"),
        (lambda e: e[:42] + bytes([e[42] ^ 0xFF]) + e[43:], "checksum"),
    ],
    ids=["truncated-half", "truncated-header", "bad-magic", "future-version",
         "tail-corruption", "payload-bitflip"],
)
def test_envelope_rejects_every_corruption_mode(mutilate, match):
    envelope = encode_snapshot(b"payload bytes that will be damaged in transit")
    with pytest.raises(SnapshotError, match=match):
        decode_snapshot(mutilate(envelope))


def test_envelope_rejects_bad_base64():
    with pytest.raises(SnapshotError, match="base64"):
        snapshot_from_text("this is !!! not base64")
