"""Tests for the Preemptive Task Scheduler: scoring, Algorithms 1-3."""

import pytest

from repro.cluster import Cluster, GPUModel, PodPlacement, TaskType
from repro.cluster.task import RunLog
from repro.core.pts import (
    PTSConfig,
    PreemptiveTaskScheduler,
    ScoringConfig,
    circuit_breaker_active,
    colocation_score,
    eviction_awareness_score,
    non_preemptive_placement,
    packing_score,
    preemption_cost,
    preemptive_placement,
    score_tuple,
    weighted_eviction_rate,
)
from tests.conftest import build_task


@pytest.fixture
def cluster():
    return Cluster.homogeneous(4, 8, GPUModel.A100)


def run_on(cluster, task, node_index=0, start=0.0):
    """Place a task on one node and mark it running (helper)."""
    node = cluster.nodes[node_index]
    placements = [PodPlacement(node_id=node.node_id, gpu_indices=())] * task.num_pods
    cluster.place_task(task, placements)
    task.run_logs.append(RunLog(start=start))
    from repro.cluster import TaskState

    task.state = TaskState.RUNNING
    return task


class TestScoring:
    def test_packing_score_prefers_fuller_nodes(self, cluster):
        node = cluster.nodes[0]
        assert packing_score(node, idle_gpus=8) == pytest.approx(0.0)
        assert packing_score(node, idle_gpus=2) == pytest.approx(0.75)

    def test_colocation_score_by_type(self, cluster):
        node = cluster.nodes[0]
        run_on(cluster, build_task(TaskType.HP, gpus_per_pod=4.0), 0)
        hp_score = colocation_score(node, build_task(TaskType.HP))
        spot_score = colocation_score(node, build_task(TaskType.SPOT))
        assert hp_score == pytest.approx(0.5)
        assert spot_score == pytest.approx(0.0)

    def test_weighted_eviction_rate_mixes_windows(self, cluster):
        node = cluster.nodes[0]
        config = ScoringConfig(gamma=0.8)
        node.record_eviction(90_000.0)          # inside the last hour
        node.record_eviction(30_000.0)          # only inside the last 24h
        rate = weighted_eviction_rate(node, now=90_100.0, config=config)
        assert rate == pytest.approx(0.8 * 1 + 0.2 * 2 / 24.0)

    def test_eviction_awareness_asymmetry(self, cluster):
        node = cluster.nodes[0]
        config = ScoringConfig(penalty=3.0)
        for i in range(20):
            node.record_eviction(1000.0 + i)
        hp = eviction_awareness_score(node, build_task(TaskType.HP), 2000.0, config)
        spot = eviction_awareness_score(node, build_task(TaskType.SPOT), 2000.0, config)
        assert hp > 0.0
        assert spot < 1.0
        assert hp + spot == pytest.approx(1.0, abs=1e-6)

    def test_circuit_breaker_trips_after_many_evictions(self, cluster):
        node = cluster.nodes[0]
        config = ScoringConfig(penalty=3.0)
        assert not circuit_breaker_active(node, 0.0, config)
        for i in range(50):
            node.record_eviction(1000.0 + i)
        assert circuit_breaker_active(node, 2000.0, config)

    def test_score_tuple_respects_ablation_switches(self, cluster):
        node = cluster.nodes[0]
        run_on(cluster, build_task(TaskType.HP, gpus_per_pod=4.0), 0)
        config = ScoringConfig()
        full = score_tuple(node, 4, build_task(TaskType.HP), 0.0, config)
        stripped = score_tuple(
            node, 4, build_task(TaskType.HP), 0.0, config,
            use_colocation=False, use_eviction_awareness=False,
        )
        assert full[1] > 0.0
        assert stripped[1] == 0.0 and stripped[2] == 0.0


class TestNonPreemptive:
    def test_places_all_pods_or_none(self, cluster):
        config = ScoringConfig()
        ok = non_preemptive_placement(build_task(TaskType.HP, num_pods=4, gpus_per_pod=8.0), cluster.nodes, 0.0, config)
        assert ok is not None and len(ok) == 4
        too_big = non_preemptive_placement(build_task(TaskType.HP, num_pods=5, gpus_per_pod=8.0), cluster.nodes, 0.0, config)
        assert too_big is None

    def test_colocation_prefers_same_type_node(self, cluster):
        config = ScoringConfig()
        run_on(cluster, build_task(TaskType.HP, gpus_per_pod=4.0), 0)
        run_on(cluster, build_task(TaskType.SPOT, gpus_per_pod=4.0), 1)
        placements = non_preemptive_placement(build_task(TaskType.SPOT, gpus_per_pod=2.0), cluster.nodes, 0.0, config)
        assert placements[0].node_id == cluster.nodes[1].node_id
        placements = non_preemptive_placement(build_task(TaskType.HP, gpus_per_pod=2.0), cluster.nodes, 0.0, config)
        assert placements[0].node_id == cluster.nodes[0].node_id

    def test_circuit_breaker_excludes_node_for_spot(self, cluster):
        config = ScoringConfig(penalty=3.0)
        bad_node = cluster.nodes[0]
        for i in range(50):
            bad_node.record_eviction(100.0 + i)
        run_on(cluster, build_task(TaskType.SPOT, gpus_per_pod=7.0), 0)  # most packed node
        placements = non_preemptive_placement(build_task(TaskType.SPOT, gpus_per_pod=1.0), cluster.nodes, 200.0, config)
        assert placements[0].node_id != bad_node.node_id


class TestPreemptive:
    def test_preempts_cheapest_victims(self, cluster):
        now = 10_000.0
        # Node 0 hosts a spot task far from its checkpoint (expensive waste),
        # node 1 hosts one that just checkpointed (cheap).
        expensive = run_on(cluster, build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=7200.0,
                                               checkpoint_interval=7200.0), 0, start=now - 3000.0)
        cheap = run_on(cluster, build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=7200.0,
                                           checkpoint_interval=600.0), 1, start=now - 3000.0)
        # Fill the remaining nodes with HP so preemption is required.
        run_on(cluster, build_task(TaskType.HP, gpus_per_pod=8.0), 2)
        run_on(cluster, build_task(TaskType.HP, gpus_per_pod=8.0), 3)
        result = preemptive_placement(
            build_task(TaskType.HP, gpus_per_pod=8.0), cluster.nodes, cluster, now,
            beta=0.5, total_gpu_seconds=1e6,
        )
        assert result is not None
        placements, victims = result
        assert victims == [cheap.task_id]
        assert placements[0].node_id == cluster.nodes[1].node_id

    def test_returns_none_when_hp_everywhere(self, cluster):
        for i in range(4):
            run_on(cluster, build_task(TaskType.HP, gpus_per_pod=8.0), i)
        result = preemptive_placement(
            build_task(TaskType.HP, gpus_per_pod=8.0), cluster.nodes, cluster, 0.0,
            beta=0.5, total_gpu_seconds=1e6,
        )
        assert result is None

    def test_spot_task_cannot_use_preemptive_path(self, cluster):
        with pytest.raises(ValueError):
            preemptive_placement(
                build_task(TaskType.SPOT), cluster.nodes, cluster, 0.0, beta=0.5, total_gpu_seconds=1.0
            )

    def test_multi_pod_preemption(self, cluster):
        now = 5000.0
        for i in range(4):
            run_on(cluster, build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=7200.0), i, start=now - 1000.0)
        result = preemptive_placement(
            build_task(TaskType.HP, num_pods=2, gpus_per_pod=8.0), cluster.nodes, cluster, now,
            beta=0.5, total_gpu_seconds=1e6,
        )
        assert result is not None
        placements, victims = result
        assert len(placements) == 2
        assert len(victims) == 2

    def test_preemption_cost_increases_with_waste_and_count(self, cluster):
        now = 1000.0
        light = run_on(cluster, build_task(TaskType.SPOT, gpus_per_pod=1.0, duration=7200.0,
                                           checkpoint_interval=600.0), 0, start=now - 100.0)
        heavy = run_on(cluster, build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=7200.0,
                                           checkpoint_interval=7200.0), 1, start=now - 3000.0)
        cheap = preemption_cost([light], cluster, now, beta=0.5, total_gpu_seconds=1e5)
        costly = preemption_cost([light, heavy], cluster, now, beta=0.5, total_gpu_seconds=1e5)
        assert costly > cheap


class TestPTSFacade:
    def test_algorithm3_non_preemptive_first(self, cluster):
        pts = PreemptiveTaskScheduler()
        decision = pts.schedule(build_task(TaskType.HP, gpus_per_pod=8.0), cluster, 0.0, 1e6)
        assert decision is not None
        assert not decision.requires_preemption

    def test_algorithm3_falls_back_to_preemption_for_hp(self, cluster):
        pts = PreemptiveTaskScheduler()
        for i in range(4):
            run_on(cluster, build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=7200.0), i)
        hp_decision = pts.schedule(build_task(TaskType.HP, gpus_per_pod=8.0), cluster, 100.0, 1e6)
        assert hp_decision is not None and hp_decision.requires_preemption
        spot_decision = pts.schedule(build_task(TaskType.SPOT, gpus_per_pod=8.0), cluster, 100.0, 1e6)
        assert spot_decision is None

    def test_random_preemption_mode_still_feasible(self, cluster):
        pts = PreemptiveTaskScheduler(PTSConfig(random_preemption=True, seed=1))
        for i in range(4):
            run_on(cluster, build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=7200.0), i)
        decision = pts.schedule(build_task(TaskType.HP, gpus_per_pod=8.0), cluster, 100.0, 1e6)
        assert decision is not None
        assert decision.requires_preemption

    def test_queue_ordering_hp_then_large_then_fcfs(self):
        pts = PreemptiveTaskScheduler()
        small_hp = build_task(TaskType.HP, gpus_per_pod=1.0, submit_time=0.0)
        big_hp = build_task(TaskType.HP, num_pods=2, gpus_per_pod=8.0, submit_time=50.0)
        spot = build_task(TaskType.SPOT, gpus_per_pod=8.0, submit_time=0.0)
        ordered = pts.sort_queue([spot, small_hp, big_hp], 0.0)
        assert ordered[0] is big_hp
        assert ordered[1] is small_hp
        assert ordered[2] is spot
