"""Property tests for the dynamics determinism/neutrality contracts.

The central invariant: attaching a :class:`DynamicsSpec` that generates
*zero events* must be bit-identical to attaching no dynamics at all — for
every scheduler family, any seed and any workload intensity.  This pins
the subsystem as strictly additive: the static fast path (event counters,
capacity accrual, metric plumbing) is shared, not forked.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, reset_task_counter, run_simulation
from repro.dynamics import DynamicsSpec, FaultInjector
from repro.schedulers import create_scheduler
from repro.workloads import generate_trace
from tests.conftest import assert_metrics_identical

FAMILIES = ("chronus", "yarn-cs", "fgd", "lyra", "pts", "gfs")

#: Zero-event specs reachable through different parameterizations: all
#: defaults, a disabled generator (period set, fraction zero), and a
#: shifted horizon/salt (which must not matter without generators).
EMPTY_SPECS = (
    DynamicsSpec(),
    DynamicsSpec(drain_period_hours=6.0, drain_fraction=0.0),
    DynamicsSpec(reclaim_period_hours=4.0, reclaim_fraction=0.0),
    DynamicsSpec(horizon_hours=2.0, seed_salt=99),
)


def _run(scheduler_name: str, seed: int, spot_scale: float, dynamics):
    reset_task_counter()
    cluster = Cluster.homogeneous(num_nodes=4)
    trace = generate_trace(
        cluster_gpus=cluster.total_gpus(),
        duration_hours=4.0,
        spot_scale=spot_scale,
        seed=seed,
    )
    kwargs = {"org_history": trace.org_history} if scheduler_name == "gfs" else {}
    scheduler = create_scheduler(scheduler_name, **kwargs)
    return run_simulation(
        cluster, scheduler, trace.sorted_tasks(), dynamics=dynamics, dynamics_seed=seed
    )


@settings(max_examples=12, deadline=None)
@given(
    scheduler_name=st.sampled_from(FAMILIES),
    seed=st.integers(min_value=0, max_value=10_000),
    spot_scale=st.sampled_from((1.0, 2.0)),
    spec=st.sampled_from(EMPTY_SPECS),
)
def test_zero_event_dynamics_is_bit_identical_to_none(
    scheduler_name, seed, spot_scale, spec
):
    assert spec.is_empty()
    baseline = _run(scheduler_name, seed, spot_scale, dynamics=None)
    with_empty = _run(scheduler_name, seed, spot_scale, dynamics=spec)
    assert_metrics_identical(with_empty, baseline, f"{scheduler_name}/seed={seed}")


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mtbf=st.sampled_from((10.0, 50.0, 200.0)),
    num_nodes=st.integers(min_value=2, max_value=12),
)
def test_schedule_reproducible_from_seed_and_cluster_spec(seed, mtbf, num_nodes):
    """Satellite: the fault schedule is a pure function of (seed, cluster)."""
    spec = DynamicsSpec(node_mtbf_hours=mtbf, drain_period_hours=8.0, drain_fraction=0.25)
    first = FaultInjector(spec, seed=seed).schedule(Cluster.homogeneous(num_nodes))
    second = FaultInjector(spec, seed=seed).schedule(Cluster.homogeneous(num_nodes))
    assert first == second
    assert first.fingerprint() == second.fingerprint()
