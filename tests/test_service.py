"""Scheduler service tests: sessions, the HTTP server, and concurrency.

The load-bearing guarantees:

* **query-load independence** — a session hammered with live queries
  (occupancy, quota, what-if forks) produces metrics bit-identical to a
  session advanced quietly, and to a direct in-process
  :class:`SimulationSession` with the same inputs;
* **cross-session isolation** — N concurrent asyncio clients driving N
  sessions with different schedulers interleave arbitrarily on one
  server, and every session still matches its single-session reference;
* **error paths** — malformed payloads, unknown sessions/routes and
  corrupt snapshots surface as typed HTTP errors, never as wedged
  connections or crashed servers;
* **snapshot over HTTP** — export → keep advancing → restore rewinds
  the session, and the continuation matches the uninterrupted run.

pytest-asyncio is deliberately not a dependency: each test owns its
loop via ``asyncio.run`` so the suite runs on the baked-in toolchain.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.logging import parse_log_line
from repro.service import AsyncServiceClient, SchedulerServer, ServiceError
from repro.service.session import (
    SessionError,
    SimulationSession,
    task_from_payload,
    task_to_payload,
)

#: compact session so every server test stays sub-second per operation
PARAMS = {"scheduler": "gfs", "num_nodes": 6, "duration_hours": 4.0, "seed": 11}


def _payload(task_id: str, submit_time: float, *, hp: bool = False, gpus: float = 4.0) -> dict:
    return {
        "task_id": task_id,
        "task_type": 1 if hp else 0,
        "num_pods": 1,
        "gpus_per_pod": gpus,
        "duration": 1800.0,
        "submit_time": submit_time,
        "org": "org-a" if hp else "org-b",
    }


def _wave(prefix: str, count: int, start: float = 0.0) -> list:
    return [_payload(f"{prefix}-{i:03d}", start + i * 120.0, hp=(i % 3 == 0)) for i in range(count)]


def _metrics_fingerprint(metrics: dict) -> str:
    """Comparable form of a metrics dict (NaN-stable via JSON tokens)."""
    return json.dumps(metrics, sort_keys=True)


def _reference_metrics(waves) -> str:
    """Metrics of a quiet in-process session fed the same submissions."""
    session = SimulationSession(PARAMS)
    for advance_to, wave in waves:
        if wave:
            session.submit(wave)
        session.advance(until=advance_to)
    session.advance()
    return _metrics_fingerprint(session.metrics())


# ----------------------------------------------------------------------
# Session layer (no server)
# ----------------------------------------------------------------------
def test_task_payload_codec_roundtrip():
    payload = _payload("codec-001", 120.0, hp=True)
    task = task_from_payload(payload)
    assert task_to_payload(task) == {**payload, "gang": False, "gpu_model": None,
                                     "checkpoint_interval": 1800.0}


def test_task_payload_rejects_missing_fields_and_bad_values():
    with pytest.raises(SessionError, match="missing required"):
        task_from_payload({"task_id": "x"})
    with pytest.raises(SessionError, match="invalid task payload"):
        task_from_payload({"task_id": "x", "num_pods": "many", "gpus_per_pod": 1, "duration": 1})


def test_session_rejects_unknown_parameters():
    with pytest.raises(SessionError, match="unknown session parameters"):
        SimulationSession({"schedulr": "gfs"})


def test_session_rejects_duplicate_and_replayed_task_ids():
    session = SimulationSession(PARAMS)
    with pytest.raises(SessionError, match="duplicate task_id"):
        session.submit([_payload("dup", 0.0), _payload("dup", 60.0)])
    session.submit([_payload("once", 0.0)])
    with pytest.raises(SessionError, match="already submitted"):
        session.submit([_payload("once", 120.0)])


def test_session_live_views_have_expected_shape():
    session = SimulationSession(PARAMS)
    session.submit(_wave("shape", 6))
    session.advance(until=1800.0)
    occupancy = session.occupancy()
    assert occupancy["total_gpus"] == 6 * 8
    assert occupancy["allocation_rate"] > 0
    assert set(occupancy["capacity"]) == {"A100"}
    quota = session.quota()
    assert quota["quota"] is not None  # GFS exposes its SQA quota
    for org in quota["orgs"].values():
        assert org["headroom"] >= 0.0
    baseline = SimulationSession({**PARAMS, "scheduler": "yarn-cs"})
    assert baseline.quota()["quota"] is None  # baselines have no quota loop


def test_what_if_answers_without_perturbing_the_session():
    session = SimulationSession(PARAMS)
    session.submit(_wave("wif", 8))
    session.advance(until=1800.0)
    before = session.status()
    advice = session.what_if(_payload("wif-probe", 1800.0), horizon_hours=8.0)
    assert advice["would_start"] and advice["would_finish"]
    assert advice["queue_wait"] >= 0.0
    assert session.status() == before  # the fork never touches the live sim
    assert all(t.task_id != "wif-probe" for t in session.sim.all_tasks)


def test_preloaded_session_carries_scenario_trace():
    session = SimulationSession({**PARAMS, "preload": True})
    assert session.status()["submitted_tasks"] > 0


# ----------------------------------------------------------------------
# Server end-to-end
# ----------------------------------------------------------------------
async def _with_server(body):
    server = SchedulerServer()
    await server.start(port=0)
    try:
        return await body(server)
    finally:
        await server.stop()


def test_http_session_lifecycle_and_errors():
    async def body(server):
        client = AsyncServiceClient(server.host, server.port)
        try:
            assert (await client.healthz())["status"] == "ok"
            session = await client.create_session(**PARAMS)
            sid = session["session_id"]
            assert [s["session_id"] for s in await client.list_sessions()] == [sid]

            with pytest.raises(ServiceError) as err:
                await client.status("no-such-session")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                await client.create_session(bogus_param=1)
            assert err.value.status == 400
            with pytest.raises(ServiceError) as err:
                await client.submit(sid, [])
            assert err.value.status == 400
            with pytest.raises(ServiceError) as err:
                await client.inject(sid, node_id="a100-sim-0000", kind="NOT_A_KIND")
            assert err.value.status == 400
            with pytest.raises(ServiceError) as err:
                await client.restore(sid, b"REPROSNPgarbage-that-is-not-an-envelope")
            assert err.value.status == 400
            with pytest.raises(ServiceError) as err:
                await client._request("PUT", f"/sessions/{sid}/advance")
            assert err.value.status == 404

            # The connection survived every error above (keep-alive intact).
            assert (await client.status(sid))["session_id"] == sid
            await client.delete_session(sid)
            with pytest.raises(ServiceError) as err:
                await client.status(sid)
            assert err.value.status == 404
        finally:
            await client.close()

    asyncio.run(_with_server(body))


def test_http_snapshot_restore_rewinds_session():
    async def body(server):
        client = AsyncServiceClient(server.host, server.port)
        try:
            sid = (await client.create_session(**PARAMS))["session_id"]
            await client.submit(sid, _wave("snap", 10))
            await client.advance(sid, until=1800.0)
            blob = await client.snapshot(sid)
            now_at_snap = (await client.status(sid))["now"]
            reference = _metrics_fingerprint(
                await self_advance_and_metrics(client, sid)
            )
            restored = await client.restore(sid, blob)
            assert restored["now"] == now_at_snap
            await client.advance(sid)
            assert _metrics_fingerprint(await client.metrics(sid)) == reference
        finally:
            await client.close()

    async def self_advance_and_metrics(client, sid):
        await client.advance(sid)
        return await client.metrics(sid)

    asyncio.run(_with_server(body))


def test_query_load_does_not_change_session_metrics():
    """A hammered session == a quiet session == the in-process reference."""
    waves = [(900.0, _wave("load", 6)), (2700.0, _wave("load2", 6, start=900.0)), (None, [])]
    reference = _reference_metrics(waves)

    async def body(server):
        quiet = AsyncServiceClient(server.host, server.port)
        noisy = AsyncServiceClient(server.host, server.port)
        prober = AsyncServiceClient(server.host, server.port)
        try:
            quiet_id = (await quiet.create_session(**PARAMS))["session_id"]
            noisy_id = (await noisy.create_session(**PARAMS))["session_id"]

            async def drive(client, sid):
                for advance_to, wave in waves:
                    if wave:
                        await client.submit(sid, wave)
                    await client.advance(sid, until=advance_to)
                await client.advance(sid)
                return _metrics_fingerprint(await client.metrics(sid))

            async def hammer(sid, stop):
                queries = 0
                while not stop.is_set():
                    await prober.occupancy(sid)
                    await prober.quota(sid)
                    await prober.what_if(sid, _payload(f"probe-{queries}", 0.0), 2.0)
                    queries += 1
                return queries

            stop = asyncio.Event()
            hammer_task = asyncio.ensure_future(hammer(noisy_id, stop))
            quiet_result, noisy_result = await asyncio.gather(
                drive(quiet, quiet_id), drive(noisy, noisy_id)
            )
            stop.set()
            queries = await hammer_task
            assert queries > 0, "the query hammer never ran"
            assert noisy_result == quiet_result == reference
        finally:
            await quiet.close()
            await noisy.close()
            await prober.close()

    asyncio.run(_with_server(body))


def test_concurrent_clients_keep_sessions_isolated():
    """N clients, N sessions, different schedulers, one server — every
    session must match the single-session run of the same inputs."""
    schedulers = ("gfs", "fgd", "yarn-cs", "chronus")

    def reference(kind):
        session = SimulationSession({**PARAMS, "scheduler": kind})
        session.submit(_wave(f"iso-{kind}", 8))
        session.advance()
        return _metrics_fingerprint(session.metrics())

    references = {kind: reference(kind) for kind in schedulers}

    async def body(server):
        async def worker(kind):
            client = AsyncServiceClient(server.host, server.port)
            try:
                sid = (await client.create_session(**{**PARAMS, "scheduler": kind}))[
                    "session_id"
                ]
                # Interleave in small steps so the server genuinely
                # multiplexes sessions rather than serialising whole runs.
                await client.submit(sid, _wave(f"iso-{kind}", 8))
                for stop in (600.0, 1200.0, 2400.0):
                    await client.advance(sid, until=stop, max_events=32)
                    await client.occupancy(sid)
                await client.advance(sid)
                return kind, _metrics_fingerprint(await client.metrics(sid))
            finally:
                await client.close()

        return dict(await asyncio.gather(*(worker(k) for k in schedulers)))

    results = asyncio.run(_with_server(body))
    for kind in schedulers:
        assert results[kind] == references[kind], f"session isolation broke for {kind}"


# ----------------------------------------------------------------------
# Observability: /metrics, per-session stats, structured access log
# ----------------------------------------------------------------------
def test_metrics_endpoint_is_prometheus_parseable():
    from repro.obs import parse_prometheus_text

    async def body(server):
        client = AsyncServiceClient(server.host, server.port)
        try:
            sid = (await client.create_session(**PARAMS))["session_id"]
            await client.submit(sid, _wave("prom", 6))
            await client.advance(sid, until=1800.0)
            page = await client.metrics_text()
            samples = parse_prometheus_text(page)  # raises on malformed lines
            names = {key.split("{", 1)[0] for key in samples}
            # Server-level request accounting...
            assert "repro_http_requests_total" in names
            assert "repro_http_request_s_count" in names
            # ...and per-session live gauges labelled with the session id.
            assert f'repro_session_now{{session="{sid}"}}' in samples
            assert samples[f'repro_session_submitted_tasks{{session="{sid}"}}'] == 6.0
            # The simulator's own counters surface through the session too.
            assert any(
                key.startswith("repro_sim_events_total") and f'session="{sid}"' in key
                for key in samples
            )
        finally:
            await client.close()

    asyncio.run(_with_server(body))


def test_stats_endpoint_returns_recorder_snapshot():
    async def body(server):
        client = AsyncServiceClient(server.host, server.port)
        try:
            sid = (await client.create_session(**PARAMS))["session_id"]
            await client.submit(sid, _wave("stats", 4))
            await client.advance(sid, until=1800.0)
            stats = await client.stats(sid)
            assert stats["session_id"] == sid
            recorder = stats["recorder"]
            assert recorder["enabled"] is True
            assert recorder["counters"]["sim.passes"] > 0
            assert "session.now" in recorder["gauges"]
            json.dumps(stats)  # endpoint payloads must be JSON-clean
        finally:
            await client.close()

    asyncio.run(_with_server(body))


def test_metrics_survive_restore_and_session_deletion():
    from repro.obs import parse_prometheus_text

    async def body(server):
        client = AsyncServiceClient(server.host, server.port)
        try:
            sid = (await client.create_session(**PARAMS))["session_id"]
            await client.submit(sid, _wave("oblife", 4))
            await client.advance(sid, until=900.0)
            blob = await client.snapshot(sid)
            await client.restore(sid, blob)
            await client.advance(sid, until=1800.0)
            # The reattached recorder keeps counting after a restore.
            stats = await client.stats(sid)
            assert stats["recorder"]["counters"]["sim.passes"] > 0
            await client.delete_session(sid)
            page = await client.metrics_text()
            samples = parse_prometheus_text(page)
            assert not any(f'session="{sid}"' in key for key in samples)
            assert any(key.startswith("repro_http_requests_total") for key in samples)
        finally:
            await client.close()

    asyncio.run(_with_server(body))


def test_structured_access_log_lines(caplog):
    import logging

    async def body(server):
        client = AsyncServiceClient(server.host, server.port)
        try:
            sid = (await client.create_session(**PARAMS))["session_id"]
            await client.status(sid)
            with pytest.raises(ServiceError):
                await client.status("no-such-session")
            return sid
        finally:
            await client.close()

    with caplog.at_level(logging.INFO, logger="repro.service"):
        sid = asyncio.run(_with_server(body))
    records = [
        parse_log_line(r.getMessage())
        for r in caplog.records
        if r.name == "repro.service"
    ]
    requests = [r for r in records if r["event"] == "http_request"]
    assert requests, records
    # every request line carries the full structured vocabulary
    for rec in requests:
        assert rec["level"] == "info"
        assert isinstance(rec["ts"], float)
        assert rec["run_id"].startswith("svc-")
        assert isinstance(rec["duration_ms"], (int, float))
    assert any(
        r["method"] == "POST" and r["path"] == "/sessions" and r["status"] == 200
        for r in requests
    ), requests
    status_lines = [
        r for r in requests if r["method"] == "GET" and r.get("session_id") == sid
    ]
    assert status_lines, requests
    assert any(
        r["status"] == 404 and r.get("session_id") == "no-such-session"
        for r in requests
    ), requests


def test_configure_logging_levels():
    import logging

    from repro.service.cli import configure_logging

    logger = logging.getLogger("repro.service")
    old_level, old_handlers = logger.level, list(logger.handlers)
    try:
        configure_logging(None)  # no-op: stays unconfigured
        assert logger.level == old_level and logger.handlers == old_handlers
        configure_logging("debug")
        assert logger.level == logging.DEBUG
        assert len(logger.handlers) == len(old_handlers) + 1
    finally:
        for handler in logger.handlers[len(old_handlers):]:
            logger.removeHandler(handler)
        logger.setLevel(old_level)
