"""Tests for organization demand processes, fleets and workload scaling."""

import numpy as np
import pytest

from repro.cluster import GPUModel
from repro.workloads import (
    DEFAULT_HOLIDAYS,
    OrganizationProfile,
    PRODUCTION_FLEET,
    SpotWorkloadLevel,
    aggregate_demand,
    all_levels,
    build_production_cluster,
    build_simulation_cluster,
    default_organizations,
    generate_org_demand_matrix,
    production_gpu_counts,
    scaled_fleet,
    spot_scale,
)


class TestOrganizationProfiles:
    def test_four_default_organizations(self):
        orgs = default_organizations()
        assert [o.name for o in orgs] == ["org-A", "org-B", "org-C", "org-D"]

    def test_demand_is_nonnegative_and_near_base(self):
        org = default_organizations()[0]
        series = org.demand_series(7 * 24, np.random.default_rng(0))
        assert np.all(series >= 0)
        assert abs(series.mean() - org.base_demand) < 15

    def test_diurnal_peak_hours_have_higher_demand(self):
        org = OrganizationProfile(name="x", base_demand=100, diurnal_amplitude=20, noise_std=0.0,
                                  burst_probability=0.0)
        rng = np.random.default_rng(0)
        peak = np.mean([org.demand_at(d * 24 + 17, rng) for d in range(5)])
        trough = np.mean([org.demand_at(d * 24 + 4, rng) for d in range(5)])
        assert peak > trough + 10

    def test_weekend_drop_applies(self):
        org = OrganizationProfile(name="x", base_demand=100, weekly_drop=0.4, noise_std=0.0,
                                  burst_probability=0.0, diurnal_amplitude=0.0)
        rng = np.random.default_rng(0)
        weekday = org.demand_at(2 * 24 + 12, rng)   # Wednesday
        weekend = org.demand_at(5 * 24 + 12, rng)   # Saturday
        assert weekend == pytest.approx(weekday * 0.6, rel=0.01)

    def test_holiday_drop_applies(self):
        org = OrganizationProfile(name="x", base_demand=100, noise_std=0.0, burst_probability=0.0,
                                  diurnal_amplitude=0.0, holidays=(1,), holiday_drop=0.5)
        rng = np.random.default_rng(0)
        normal = org.demand_at(0 * 24 + 12, rng)
        holiday = org.demand_at(1 * 24 + 12, rng)
        assert holiday == pytest.approx(normal * 0.5, rel=0.01)

    def test_business_attributes_exposed(self):
        attrs = default_organizations()[0].business_attributes()
        assert set(attrs) == {"organization", "cluster", "gpu_model"}

    def test_matrix_generation_deterministic_per_seed(self):
        orgs = default_organizations()
        a = generate_org_demand_matrix(orgs, 48, seed=3)
        b = generate_org_demand_matrix(orgs, 48, seed=3)
        c = generate_org_demand_matrix(orgs, 48, seed=4)
        assert np.allclose(a["org-A"], b["org-A"])
        assert not np.allclose(a["org-A"], c["org-A"])

    def test_aggregate_demand_sums_orgs(self):
        demand = {"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])}
        assert np.allclose(aggregate_demand(demand), [4.0, 6.0])

    def test_aggregate_demand_empty(self):
        assert aggregate_demand({}).size == 0

    def test_default_holidays_are_shared(self):
        for org in default_organizations():
            assert tuple(org.holidays) == DEFAULT_HOLIDAYS


class TestFleet:
    def test_production_fleet_matches_table1_models(self):
        models = {e.model for e in PRODUCTION_FLEET}
        assert models == {GPUModel.A10, GPUModel.A100, GPUModel.A800, GPUModel.H800}

    def test_gpu_counts(self):
        counts = production_gpu_counts()
        assert counts[GPUModel.A10] == 2781
        assert counts[GPUModel.A100] == 4160
        # The whole fleet matches the paper's 10,365-GPU cluster.
        assert sum(counts.values()) == 10_365

    def test_scaled_fleet_keeps_at_least_one_node(self):
        tiny = scaled_fleet(0.001)
        assert all(e.node_count >= 1 for e in tiny)

    def test_build_production_cluster_heterogeneous(self):
        cluster = build_production_cluster(scale=0.01)
        assert len(cluster.gpu_models) == 4

    def test_build_simulation_cluster_size(self):
        cluster = build_simulation_cluster(num_nodes=10)
        assert cluster.total_gpus() == pytest.approx(80.0)


class TestSpotScaling:
    def test_levels_and_factors(self):
        assert spot_scale(SpotWorkloadLevel.LOW) == 1.0
        assert spot_scale("medium") == 2.0
        assert spot_scale("HIGH") == 4.0
        assert len(all_levels()) == 3

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            spot_scale("extreme")
