"""Seeded chaos harness: the sweep converges through injected faults.

The proof obligation of the fault-tolerance layer: with a deterministic
:class:`ChaosPlan` striking worker processes (``kill`` = ``os._exit``,
``hang`` = sleep past the guard timeout, ``poison`` = raise) and a
:class:`JobGuard` whose retry budget exceeds the plan's ``max_strikes``,
every sweep **converges to the bit-identical uninterrupted reference** —
the chaos is invisible in the results, visible only in the supervision
counters.  When the budget does *not* cover the strikes, failures are
structured (:class:`JobFailure` / :class:`SweepError`), never a crash.
"""

import pytest

from repro.experiments import (
    ExperimentEngine,
    ExperimentScale,
    SchedulerSpec,
    WorkloadSpec,
    metrics_to_payload,
    sweep_jobs,
)
from repro.runtime import ChaosPlan, JobGuard, RetryPolicy, SweepError, SweepJournal

TINY = ExperimentScale(name="tiny", num_nodes=8, duration_hours=6.0, seed=13)

#: fast backoff so retry storms don't stretch the suite
FAST = RetryPolicy(base_s=0.01, factor=2.0, cap_s=0.05)


def chaos_grid():
    specs = [SchedulerSpec(kind="yarn-cs"), SchedulerSpec(kind="fgd")]
    workloads = [
        WorkloadSpec(spot_scale=2.0, label="medium"),
        WorkloadSpec(scenario="burst", spot_scale=1.0, label="burst"),
    ]
    return sweep_jobs(TINY, specs, workloads, prefix="grid")


def reference_payloads(jobs):
    return {
        key: metrics_to_payload(m)
        for key, m in ExperimentEngine(workers=1).run(jobs).items()
    }


def scheduled_strikes(plan, jobs):
    """The exact (job, attempt) -> action schedule this plan will inflict."""
    return {
        (job.key, attempt): plan.decide(job.key, attempt)
        for job in jobs
        for attempt in range(1, plan.max_strikes + 1)
    }


def seed_with_strikes(jobs, action, want=1, **plan_kwargs):
    """The first chaos seed scheduling at least ``want`` strikes of
    ``action`` on these jobs' *first* attempts (pure search, no RNG).

    Only first attempts are guaranteed to happen — a strike scheduled for
    attempt 2 of a job that succeeds on attempt 1 never fires.
    """
    for seed in range(200):
        plan = ChaosPlan(seed=seed, **plan_kwargs)
        hits = sum(1 for job in jobs if plan.decide(job.key, 1) == action)
        if hits >= want:
            return plan
    raise AssertionError(f"no seed under 200 schedules {want} {action!r} strikes")


class TestChaosConvergence:
    def test_kill_storm_converges_bit_identically(self):
        jobs = chaos_grid()
        reference = reference_payloads(jobs)
        plan = seed_with_strikes(jobs, "kill", want=2, kill_prob=0.4)
        guard = JobGuard(retries=plan.max_strikes + 1, backoff=FAST)
        engine = ExperimentEngine(workers=2, guard=guard, chaos=plan)
        results = engine.run(jobs)
        assert {k: metrics_to_payload(m) for k, m in results.items()} == reference
        assert engine.failures == {}
        # The kills really happened: the pool was rebuilt to survive them.
        assert engine.last_supervision["pool_rebuilds"] >= 1

    def test_poison_storm_converges(self):
        jobs = chaos_grid()
        reference = reference_payloads(jobs)
        plan = ChaosPlan(seed=0, poison_prob=1.0, max_strikes=2)
        guard = JobGuard(retries=3, backoff=FAST)
        engine = ExperimentEngine(workers=2, guard=guard, chaos=plan)
        results = engine.run(jobs)
        assert {k: metrics_to_payload(m) for k, m in results.items()} == reference
        # Every cell was poisoned max_strikes times before succeeding.
        assert engine.last_supervision["retries"] == len(jobs) * plan.max_strikes

    def test_hang_converges_through_guard_timeout(self):
        jobs = chaos_grid()[:2]
        reference = reference_payloads(jobs)
        plan = seed_with_strikes(
            jobs, "hang", want=1, hang_prob=0.3, hang_s=30.0, max_strikes=1
        )
        guard = JobGuard(timeout_s=0.75, retries=2, backoff=FAST)
        engine = ExperimentEngine(workers=2, guard=guard, chaos=plan)
        results = engine.run(jobs)
        assert {k: metrics_to_payload(m) for k, m in results.items()} == reference
        assert engine.last_supervision["timeouts"] >= 1

    def test_mixed_chaos_converges(self):
        jobs = chaos_grid()
        reference = reference_payloads(jobs)
        plan = seed_with_strikes(
            jobs, "kill", want=1, kill_prob=0.2, poison_prob=0.2, max_strikes=2
        )
        first_attempt = [plan.decide(job.key, 1) for job in jobs]
        assert "kill" in first_attempt
        guard = JobGuard(retries=3, backoff=FAST)
        engine = ExperimentEngine(workers=2, guard=guard, chaos=plan)
        results = engine.run(jobs)
        assert {k: metrics_to_payload(m) for k, m in results.items()} == reference

    def test_chaos_schedule_is_reproducible(self):
        jobs = chaos_grid()
        plan = ChaosPlan(seed=42, kill_prob=0.3, poison_prob=0.3)
        assert scheduled_strikes(plan, jobs) == scheduled_strikes(plan, jobs)
        other = ChaosPlan(seed=43, kill_prob=0.3, poison_prob=0.3)
        assert scheduled_strikes(plan, jobs) != scheduled_strikes(other, jobs)


class TestChaosExhaustion:
    """When the retry budget does NOT cover the strikes: structured failure."""

    def test_strict_sweep_raises_after_draining(self):
        jobs = chaos_grid()
        plan = ChaosPlan(seed=0, poison_prob=1.0, max_strikes=3)
        guard = JobGuard(retries=1, backoff=FAST, strict=True)
        engine = ExperimentEngine(workers=2, guard=guard, chaos=plan)
        with pytest.raises(SweepError) as excinfo:
            engine.run(jobs)
        assert len(excinfo.value.failures) == len(jobs)
        for failure in excinfo.value.failures:
            assert failure.kind == "exception"
            assert failure.attempts == 2  # 1 + retries
            assert "ChaosPoison" in failure.error_type

    def test_tolerant_sweep_reports_failures_and_keeps_survivors(self):
        jobs = chaos_grid()
        reference = reference_payloads(jobs)
        # Poison only the first job's key, forever.
        victim = jobs[0].key
        plan = seed_with_strikes(
            [jobs[0]], "poison", want=1, poison_prob=0.9, max_strikes=99
        )
        # With max_strikes=99 and poison_prob=0.9 some other cells may be
        # struck too, but retries=4 outlasts any realistic schedule only
        # for unstruck attempts — so instead pin the plan to strike only
        # attempt 1 via max_strikes=1, guaranteeing survivors converge.
        plan = ChaosPlan(seed=plan.seed, poison_prob=0.9, max_strikes=1)
        guard = JobGuard(retries=0, backoff=FAST, strict=False)
        engine = ExperimentEngine(workers=2, guard=guard, chaos=plan)
        results = engine.run(jobs)
        struck = {
            job.key
            for job in jobs
            if plan.decide(job.key, 1) != "ok"
        }
        assert victim in struck
        assert set(results) == {j.key for j in jobs} - struck
        assert set(engine.failures) == struck
        assert engine.stats.failed == len(struck)
        for key, metrics in results.items():
            assert metrics_to_payload(metrics) == reference[key]


class TestChaosWithJournal:
    def test_chaotic_sweep_journals_cleanly_and_resumes(self, tmp_path):
        jobs = chaos_grid()
        reference = reference_payloads(jobs)
        journal_path = tmp_path / "sweep.jsonl"
        plan = seed_with_strikes(jobs, "kill", want=1, kill_prob=0.3)
        guard = JobGuard(retries=plan.max_strikes + 1, backoff=FAST)
        chaotic = ExperimentEngine(
            workers=2, guard=guard, chaos=plan, journal=journal_path
        )
        chaotic.run(jobs)

        replay = SweepJournal(journal_path).replay()
        assert replay.torn_lines == 0
        assert len(replay.completed) == len(jobs)

        # Resume without chaos: pure journal replay, bit-identical.
        calm = ExperimentEngine(workers=2, journal=journal_path)
        results = calm.run(jobs)
        assert calm.stats.journal_hits == len(jobs)
        assert calm.stats.executed == 0
        assert {k: metrics_to_payload(m) for k, m in results.items()} == reference
