"""Unit tests for JCT/JQT/eviction metric computation."""

import math

import pytest

from repro.cluster import TaskType, compute_class_metrics, compute_metrics, improvement, percentile
from repro.cluster.task import RunLog
from tests.conftest import build_task


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_single_value(self):
        assert percentile([42.0], 99) == 42.0

    def test_median_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        values = list(map(float, range(1, 101)))
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0
        assert percentile(values, 99) == pytest.approx(99.01)


class TestClassMetrics:
    def _finished_task(self, task_type, jct, jqt, evictions=0, runs=1):
        task = build_task(task_type, duration=max(jct - jqt, 1.0))
        task.finish_time = task.submit_time + jct
        task.total_queue_time = jqt
        task.eviction_count = evictions
        task.run_logs = [RunLog(start=0.0) for _ in range(runs)]
        return task

    def test_mean_and_p99(self):
        tasks = [self._finished_task(TaskType.HP, jct, 10.0) for jct in (100.0, 200.0, 300.0)]
        metrics = compute_class_metrics(tasks)
        assert metrics.count == 3
        assert metrics.jct_mean == pytest.approx(200.0)
        assert metrics.jqt_mean == pytest.approx(10.0)

    def test_eviction_rate_counts_runs(self):
        evicted = self._finished_task(TaskType.SPOT, 500.0, 50.0, evictions=1, runs=2)
        clean = self._finished_task(TaskType.SPOT, 300.0, 0.0, evictions=0, runs=1)
        metrics = compute_class_metrics([evicted, clean])
        assert metrics.total_runs == 3
        assert metrics.total_evictions == 1
        assert metrics.eviction_rate == pytest.approx(1.0 / 3.0)

    def test_unfinished_tasks_excluded_from_jct(self):
        unfinished = build_task(TaskType.SPOT)
        finished = self._finished_task(TaskType.SPOT, 100.0, 0.0)
        metrics = compute_class_metrics([unfinished, finished])
        assert metrics.count == 1
        assert metrics.jct_mean == pytest.approx(100.0)


class TestSimulationMetrics:
    def test_split_by_class_and_allocation_series(self):
        hp = build_task(TaskType.HP, duration=100.0)
        hp.finish_time = 100.0
        spot = build_task(TaskType.SPOT, duration=50.0)
        spot.finish_time = 80.0
        spot.total_queue_time = 30.0
        metrics = compute_metrics([hp, spot], allocation_series=[0.5, 0.7], makespan=100.0)
        assert metrics.hp.count == 1
        assert metrics.spot.count == 1
        assert metrics.allocation_rate_mean == pytest.approx(0.6)
        assert metrics.unfinished_tasks == 0
        assert "eviction" in metrics.summary()

    def test_as_dict_round_trip(self):
        hp = build_task(TaskType.HP, duration=100.0)
        hp.finish_time = 150.0
        payload = compute_metrics([hp]).as_dict()
        assert payload["hp"]["count"] == 1
        assert "spot" in payload


class TestImprovement:
    def test_positive_improvement(self):
        assert improvement(100.0, 80.0) == pytest.approx(0.2)

    def test_zero_baseline(self):
        assert improvement(0.0, 10.0) == 0.0

    def test_regression_is_negative(self):
        assert improvement(100.0, 120.0) == pytest.approx(-0.2)
