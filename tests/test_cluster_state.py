"""Unit tests for cluster-level accounting and placement mutations."""

import pytest

from repro.cluster import Cluster, GPUModel, PodPlacement, TaskType, make_nodes
from tests.conftest import build_task


def place(cluster, task, node_ids):
    placements = [PodPlacement(node_id=n, gpu_indices=(), fraction=task.gpus_per_pod) for n in node_ids]
    cluster.place_task(task, placements)
    return placements


class TestClusterAccounting:
    def test_capacity_totals(self, small_cluster):
        assert small_cluster.total_gpus() == pytest.approx(32.0)
        assert small_cluster.idle_gpus() == pytest.approx(32.0)
        assert small_cluster.allocation_rate() == pytest.approx(0.0)

    def test_place_and_remove_task(self, small_cluster):
        task = build_task(TaskType.HP, num_pods=2, gpus_per_pod=4.0)
        nodes = [n.node_id for n in small_cluster.nodes[:2]]
        place(small_cluster, task, nodes)
        assert small_cluster.hp_gpus() == pytest.approx(8.0)
        assert task.task_id in small_cluster.running_tasks
        small_cluster.remove_task(task)
        assert small_cluster.hp_gpus() == pytest.approx(0.0)
        assert task.task_id not in small_cluster.running_tasks
        assert task.placements == []

    def test_double_placement_rejected(self, small_cluster):
        task = build_task(TaskType.SPOT, gpus_per_pod=1.0)
        place(small_cluster, task, [small_cluster.nodes[0].node_id])
        with pytest.raises(ValueError):
            place(small_cluster, task, [small_cluster.nodes[1].node_id])

    def test_failed_placement_rolls_back(self, small_cluster):
        filler = build_task(TaskType.HP, gpus_per_pod=8.0)
        place(small_cluster, filler, [small_cluster.nodes[0].node_id])
        # Second pod cannot fit on the full node; whole placement must roll back.
        task = build_task(TaskType.HP, num_pods=2, gpus_per_pod=8.0)
        with pytest.raises(ValueError):
            place(small_cluster, task, [small_cluster.nodes[1].node_id, small_cluster.nodes[0].node_id])
        assert task.task_id not in small_cluster.running_tasks
        assert small_cluster.node(small_cluster.nodes[1].node_id).idle_gpus == 8

    def test_stats_snapshot(self, small_cluster):
        hp = build_task(TaskType.HP, gpus_per_pod=4.0)
        spot = build_task(TaskType.SPOT, gpus_per_pod=2.0)
        place(small_cluster, hp, [small_cluster.nodes[0].node_id])
        place(small_cluster, spot, [small_cluster.nodes[1].node_id])
        stats = small_cluster.stats()
        assert stats.hp_gpus == pytest.approx(4.0)
        assert stats.spot_gpus == pytest.approx(2.0)
        assert stats.running_hp_tasks == 1
        assert stats.running_spot_tasks == 1
        assert stats.allocation_rate == pytest.approx(6.0 / 32.0)

    def test_spot_outcome_counters(self, small_cluster):
        small_cluster.record_spot_outcome(evicted=True)
        small_cluster.record_spot_outcome(evicted=False)
        small_cluster.record_spot_outcome(evicted=False)
        assert small_cluster.evicted_spot_runs == 1
        assert small_cluster.successful_spot_runs == 2

    def test_record_execution_accumulates_gpu_seconds(self, small_cluster):
        task = build_task(TaskType.HP, gpus_per_pod=4.0)
        node_id = small_cluster.nodes[0].node_id
        place(small_cluster, task, [node_id])
        small_cluster.record_execution(task, runtime=100.0)
        assert small_cluster.node_gpu_seconds[node_id] == pytest.approx(400.0)

    def test_spot_gpus_with_guarantee(self, small_cluster):
        task = build_task(TaskType.SPOT, gpus_per_pod=2.0)
        task.guaranteed_hours = 2.0
        place(small_cluster, task, [small_cluster.nodes[0].node_id])
        assert small_cluster.spot_gpus_with_guarantee(1.0, now=0.0) == pytest.approx(2.0)
        assert small_cluster.spot_gpus_with_guarantee(4.0, now=0.0) == pytest.approx(0.0)


class TestHeterogeneousCluster:
    def test_model_filtering(self):
        nodes = make_nodes(2, GPUModel.A100) + make_nodes(3, GPUModel.A10, gpus_per_node=1)
        cluster = Cluster(nodes)
        assert cluster.total_gpus(GPUModel.A100) == pytest.approx(16.0)
        assert cluster.total_gpus(GPUModel.A10) == pytest.approx(3.0)
        assert len(cluster.nodes_for_model(GPUModel.A10)) == 3
        assert set(cluster.gpu_models) == {GPUModel.A100, GPUModel.A10}

    def test_describe_mentions_all_models(self):
        nodes = make_nodes(1, GPUModel.A100) + make_nodes(1, GPUModel.H800)
        text = Cluster(nodes).describe()
        assert "A100" in text and "H800" in text

    def test_duplicate_node_ids_rejected(self):
        nodes = make_nodes(1, GPUModel.A100)
        with pytest.raises(ValueError):
            Cluster(nodes + nodes)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])
