"""Tests for the Spot Quota Allocator: inventory estimation and eta feedback."""

import numpy as np
import pytest

from repro.core.gde import GPUDemandEstimator, SeasonalQuantileForecaster
from repro.core.sqa import GPUInventoryEstimator, SQAConfig, SpotQuotaAllocator


def make_estimator(level_a=200.0, level_b=100.0, hours=336):
    history = {
        "org-A": np.full(hours, level_a),
        "org-B": np.full(hours, level_b),
    }
    return GPUDemandEstimator(SeasonalQuantileForecaster()).fit(history)


class TestInventoryEstimation:
    def test_available_is_capacity_minus_peak(self):
        inventory = GPUInventoryEstimator(make_estimator(), capacity=512.0)
        estimate = inventory.estimate(start_hour=336, horizon_hours=1.0, p=0.9)
        assert estimate.aggregated_peak_demand == pytest.approx(300.0, abs=15.0)
        assert estimate.available == pytest.approx(512.0 - estimate.aggregated_peak_demand)

    def test_saturated_cluster_yields_zero(self):
        inventory = GPUInventoryEstimator(make_estimator(400.0, 300.0), capacity=512.0)
        assert inventory.available_gpus(336, 1.0, 0.9) == 0.0

    def test_higher_guarantee_rate_reserves_more(self):
        history = {"org-A": 200.0 + 20.0 * np.random.default_rng(0).normal(size=336)}
        estimator = GPUDemandEstimator(SeasonalQuantileForecaster()).fit(history)
        inventory = GPUInventoryEstimator(estimator, capacity=512.0)
        assert inventory.available_gpus(336, 1.0, 0.99) <= inventory.available_gpus(336, 1.0, 0.8)

    def test_longer_horizon_cannot_increase_availability(self):
        inventory = GPUInventoryEstimator(make_estimator(), capacity=512.0)
        short = inventory.available_gpus(336, 1.0, 0.9)
        long = inventory.available_gpus(336, 8.0, 0.9)
        assert long <= short + 1e-6

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GPUInventoryEstimator(make_estimator(), capacity=0.0)

    def test_per_org_breakdown_present(self):
        inventory = GPUInventoryEstimator(make_estimator(), capacity=512.0)
        estimate = inventory.estimate(336, 1.0, 0.9)
        assert set(estimate.per_org_peak) == {"org-A", "org-B"}


class TestEtaFeedback:
    def make_sqa(self, **config_kwargs):
        config = SQAConfig(**config_kwargs)
        inventory = GPUInventoryEstimator(make_estimator(), capacity=512.0)
        return SpotQuotaAllocator(inventory, config)

    def test_high_eviction_shrinks_eta(self):
        sqa = self.make_sqa(guarantee_rate=0.9)
        before = sqa.eta
        sqa.update_eta(eviction_rate=0.4, max_queue_time=0.0)
        assert sqa.eta < before

    def test_low_eviction_with_long_queue_grows_eta(self):
        sqa = self.make_sqa(guarantee_rate=0.9, queue_threshold=3600.0)
        before = sqa.eta
        sqa.update_eta(eviction_rate=0.01, max_queue_time=7200.0)
        assert sqa.eta > before

    def test_low_eviction_with_short_queue_keeps_eta(self):
        sqa = self.make_sqa()
        before = sqa.eta
        sqa.update_eta(eviction_rate=0.01, max_queue_time=10.0)
        assert sqa.eta == pytest.approx(before)

    def test_moderate_eviction_keeps_eta(self):
        sqa = self.make_sqa(guarantee_rate=0.9)
        before = sqa.eta
        sqa.update_eta(eviction_rate=0.1, max_queue_time=10_000.0)
        assert sqa.eta == pytest.approx(before)

    def test_eta_bounded(self):
        sqa = self.make_sqa(min_eta=0.5, max_eta=2.0)
        for _ in range(20):
            sqa.update_eta(eviction_rate=0.9, max_queue_time=0.0)
        assert sqa.eta == pytest.approx(0.5)
        for _ in range(20):
            sqa.update_eta(eviction_rate=0.0, max_queue_time=1e6)
        assert sqa.eta == pytest.approx(2.0)


class TestQuotaComputation:
    def make_sqa(self):
        inventory = GPUInventoryEstimator(make_estimator(), capacity=512.0)
        return SpotQuotaAllocator(inventory, SQAConfig(guarantee_rate=0.9, guarantee_hours=1.0))

    def test_quota_bounded_by_physical_availability(self):
        sqa = self.make_sqa()
        quota = sqa.compute_quota(
            now=0.0, start_hour=336, idle_gpus=50.0, guaranteed_spot_gpus=10.0,
            eviction_rate=0.0, max_queue_time=0.0,
        )
        assert quota <= 60.0 + 1e-9

    def test_quota_bounded_by_forecast(self):
        sqa = self.make_sqa()
        quota = sqa.compute_quota(
            now=0.0, start_hour=336, idle_gpus=512.0, guaranteed_spot_gpus=0.0,
            eviction_rate=0.0, max_queue_time=0.0, adapt=False,
        )
        estimate = sqa.inventory.estimate(336, 1.0, 0.9)
        assert quota == pytest.approx(estimate.available * sqa.eta)

    def test_quota_never_negative(self):
        inventory = GPUInventoryEstimator(make_estimator(600.0, 300.0), capacity=512.0)
        sqa = SpotQuotaAllocator(inventory, SQAConfig())
        quota = sqa.compute_quota(
            now=0.0, start_hour=336, idle_gpus=0.0, guaranteed_spot_gpus=0.0,
            eviction_rate=0.5, max_queue_time=0.0,
        )
        assert quota == 0.0

    def test_admits_respects_quota(self):
        sqa = self.make_sqa()
        sqa.current_quota = 100.0
        assert sqa.admits(requested_gpus=20.0, spot_gpus_in_use=70.0)
        assert not sqa.admits(requested_gpus=40.0, spot_gpus_in_use=70.0)

    def test_history_recorded(self):
        sqa = self.make_sqa()
        sqa.compute_quota(now=10.0, start_hour=336, idle_gpus=100.0, guaranteed_spot_gpus=0.0,
                          eviction_rate=0.0, max_queue_time=0.0)
        assert len(sqa.history) == 1
        assert sqa.history[0].time == 10.0
        assert sqa.history[0].quota == sqa.current_quota
