"""Unit tests for the observability core (recorder + Prometheus text).

Covers the instrument primitives (counters, gauges, histograms, spans),
the :data:`NULL_RECORDER` zero-overhead contract (no-op surface, pickles
back to the singleton), the simulator's event-counter shim and pre-obs
pickle migration, and the Prometheus exposition renderer round-tripping
through the minimal parser that the smoke scrape uses.
"""

from __future__ import annotations

import math
import pickle

import pytest

from tests.test_stepping_determinism import build_sim
from repro.cluster.simulator import ClusterSimulator
from repro.obs import (
    NULL_RECORDER,
    EventLoopCounters,
    Histogram,
    NullRecorder,
    PassRecord,
    Recorder,
    TickSample,
    parse_prometheus_text,
    render_recorder,
)
from repro.obs.prometheus import metric_name, render_histogram


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_bucketing_and_stats():
    hist = Histogram(bounds=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
        hist.observe(value)
    assert hist.counts == [1, 2, 1, 1]  # final slot is the +Inf bucket
    assert hist.count == 5
    assert hist.total == pytest.approx(5.0605)
    assert hist.min == 0.0005 and hist.max == 5.0
    assert hist.mean == pytest.approx(5.0605 / 5)
    assert hist.as_dict()["count"] == 5


def test_empty_histogram_mean_is_nan_and_as_dict_none():
    hist = Histogram()
    assert math.isnan(hist.mean)
    assert hist.as_dict()["min"] is None and hist.as_dict()["mean"] is None


# ----------------------------------------------------------------------
# Recorder primitives
# ----------------------------------------------------------------------
def test_recorder_counters_gauges_and_labels():
    rec = Recorder()
    rec.count("sim.events", 1.0, {"kind": "TASK_ARRIVAL"})
    rec.count("sim.events", 2.0, {"kind": "TASK_ARRIVAL"})
    rec.count("sim.events", 1.0, {"kind": "QUOTA_TICK"})
    rec.gauge("depth", 4.0)
    rec.gauge("depth", 7.0)
    assert rec.counter_value("sim.events", {"kind": "TASK_ARRIVAL"}) == 3.0
    assert rec.counter_value("sim.events", {"kind": "QUOTA_TICK"}) == 1.0
    assert rec.counter_value("sim.events") == 0.0  # unlabelled is distinct
    assert rec.gauges[("depth", ())] == 7.0


def test_recorder_span_times_into_histogram():
    rec = Recorder()
    with rec.span("phase"):
        pass
    assert rec.histograms["phase"].count == 1
    assert rec.histograms["phase"].total >= 0.0


def test_pass_record_limit_drops_oldest_deterministically():
    rec = Recorder(pass_record_limit=3)
    for i in range(5):
        rec.record_pass(
            PassRecord(
                sim_time=float(i), trigger="tick", examined=1, scheduled=0,
                memo_hits=0, index_rejects=0, searches=1, pending_depth=i,
            ),
            wall_seconds=0.0,
        )
    assert [r.sim_time for r in rec.pass_records] == [2.0, 3.0, 4.0]
    assert rec.dropped_pass_records == 2
    # Aggregates keep counting past the window.
    assert rec.counter_value("sim.passes") == 5.0


def test_recorder_snapshot_is_json_shaped():
    import json

    rec = Recorder()
    rec.record_dispatch("TASK_ARRIVAL", 0.001)
    rec.sample_tick(TickSample(0.0, 2, 1, 0.5))
    snap = rec.snapshot()
    assert snap["enabled"] is True
    assert snap["counters"]["sim.events{kind=TASK_ARRIVAL}"] == 1.0
    assert snap["gauges"]["sim.pending_depth"] == 2.0
    json.dumps(snap)  # must be serialisable as-is for the stats endpoint


# ----------------------------------------------------------------------
# NullRecorder: the zero-overhead default
# ----------------------------------------------------------------------
def test_null_recorder_is_inert_and_pickles_to_singleton():
    assert NULL_RECORDER.enabled is False
    NULL_RECORDER.count("x")
    NULL_RECORDER.gauge("x", 1.0)
    NULL_RECORDER.observe("x", 1.0)
    NULL_RECORDER.record_dispatch("TASK_ARRIVAL", 0.0)
    NULL_RECORDER.record_pass(
        PassRecord(0.0, "tick", 0, 0, 0, 0, 0, 0), 0.0
    )
    NULL_RECORDER.sample_tick(TickSample(0.0, 0, 0, 0.0))
    with NULL_RECORDER.span("x"):
        pass
    assert NULL_RECORDER.snapshot() == {"enabled": False}
    assert pickle.loads(pickle.dumps(NULL_RECORDER)) is NULL_RECORDER
    assert isinstance(NULL_RECORDER, NullRecorder)


# ----------------------------------------------------------------------
# Simulator integration: counter shim, pickle semantics, migration
# ----------------------------------------------------------------------
def test_simulator_event_counter_shim_properties():
    sim = build_sim("gfs")
    assert sim._task_events == sim._event_counts.task_events > 0
    assert sim._tick_events == sim._event_counts.tick_events
    assert sim._dynamics_events == sim._event_counts.dynamics_events


def test_simulator_pickle_strips_recorder():
    sim = build_sim("gfs")
    sim.obs = Recorder()
    sim.advance(until=1800.0)
    assert sim.obs.counter_value("sim.passes") > 0
    restored = pickle.loads(pickle.dumps(sim))
    assert restored.obs is NULL_RECORDER
    # The live simulator keeps its recorder; only the pickle drops it.
    assert sim.obs.enabled


def test_setstate_migrates_pre_obs_snapshot_counters():
    sim = build_sim("gfs")
    sim.advance(until=1800.0)
    state = sim.__getstate__()
    # Forge the pre-obs layout: plain ints, no EventLoopCounters, no obs.
    counts = state.pop("_event_counts")
    state.pop("obs")
    state["_task_events"] = counts.task_events
    state["_dynamics_events"] = counts.dynamics_events
    state["_tick_events"] = counts.tick_events

    legacy = ClusterSimulator.__new__(ClusterSimulator)
    legacy.__setstate__(pickle.loads(pickle.dumps(state)))
    assert legacy.obs is NULL_RECORDER
    assert isinstance(legacy._event_counts, EventLoopCounters)
    assert legacy._task_events == counts.task_events
    assert legacy._tick_events == counts.tick_events
    # The migrated ints live in the counters object, not the instance
    # dict, so the shim properties stay authoritative.
    assert "_task_events" not in legacy.__dict__

    legacy.advance()
    legacy.finalize()  # must run to completion on migrated state


# ----------------------------------------------------------------------
# Prometheus rendering
# ----------------------------------------------------------------------
def test_metric_name_sanitisation():
    assert metric_name("sim.pass_wall_s") == "repro_sim_pass_wall_s"
    assert metric_name("sim.dispatch_s.TASK_ARRIVAL") == "repro_sim_dispatch_s_TASK_ARRIVAL"
    assert metric_name("a//b", prefix="") == "a_b"


def test_render_recorder_round_trips_through_parser():
    rec = Recorder()
    rec.count("sim.events", 3.0, {"kind": "TASK_ARRIVAL"})
    rec.gauge("sim.pending_depth", 12.0)
    rec.observe("sim.pass_wall_s", 0.002)
    page = render_recorder(rec)
    samples = parse_prometheus_text(page)
    assert samples['repro_sim_events_total{kind="TASK_ARRIVAL"}'] == 3.0
    assert samples["repro_sim_pending_depth"] == 12.0
    assert samples['repro_sim_pass_wall_s_bucket{le="+Inf"}'] == 1.0
    assert samples["repro_sim_pass_wall_s_count"] == 1.0
    assert "# TYPE repro_sim_events_total counter" in page


def test_render_recorder_extra_labels_and_type_suppression():
    rec = Recorder()
    rec.gauge("session.now", 42.0)
    page = render_recorder(rec, extra_labels={"session": "session-0001"}, emit_type_lines=False)
    assert "# TYPE" not in page
    samples = parse_prometheus_text(page)
    assert samples['repro_session_now{session="session-0001"}'] == 42.0


def test_render_histogram_buckets_are_cumulative():
    hist = Histogram(bounds=(0.001, 0.01))
    hist.observe(0.0005)
    hist.observe(0.005)
    hist.observe(5.0)
    text = render_histogram("h", hist)
    samples = parse_prometheus_text(text)
    assert samples['h_bucket{le="0.001"}'] == 1.0
    assert samples['h_bucket{le="0.01"}'] == 2.0
    assert samples['h_bucket{le="+Inf"}'] == 3.0
    assert samples["h_count"] == 3.0


def test_parse_prometheus_text_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_prometheus_text("this is not a metric line")
    with pytest.raises(ValueError):
        parse_prometheus_text("name{unclosed 1.0")
    assert parse_prometheus_text("# just a comment\n\n") == {}
