"""Tests for the fault-tolerance runtime: atomic writes, guards, the
write-ahead sweep journal, the supervised executor and the chaos planner.

Pool-based tests use tiny sleeps and 2-worker pools so the whole module
stays inside the tier-1 time budget; the heavier end-to-end proofs
(kill -9 resume, chaos convergence) live in ``test_resume.py`` and
``test_chaos_harness.py``.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.runtime import (
    CHAOS_ACTIONS,
    ChaosPlan,
    ChaosPoison,
    ChaosWorker,
    GracefulShutdown,
    JobFailure,
    JobGuard,
    JournalError,
    ResilientExecutor,
    RetryPolicy,
    SweepError,
    SweepJournal,
    atomic_write_bytes,
    atomic_write_text,
    deterministic_fraction,
)


# ----------------------------------------------------------------------
# Picklable workers for pool tests
# ----------------------------------------------------------------------
class Item:
    def __init__(self, key):
        self.key = key

    def __repr__(self):
        return f"Item({self.key!r})"


def ok_worker(item, attempt):
    return f"{item.key}:ok"


def echo_attempt(item, attempt):
    return attempt


def fail_until_attempt_3(item, attempt):
    if attempt < 3:
        raise ValueError(f"flaky on attempt {attempt}")
    return f"{item.key}:recovered"


def always_fail(item, attempt):
    raise RuntimeError("permanently broken")


def die_once(item, attempt):
    # kill -9 semantics on the first attempt only: no unwinding.
    if attempt == 1 and item.key == "victim":
        os._exit(137)
    return f"{item.key}:survived@{attempt}"


def hang_once(item, attempt):
    if attempt == 1 and item.key == "sleeper":
        time.sleep(60.0)
    return f"{item.key}:done@{attempt}"


FAST = RetryPolicy(base_s=0.01, factor=2.0, cap_s=0.05)


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrites:
    def test_creates_parents_and_roundtrips(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "file.json"
        out = atomic_write_text(target, '{"a": 1}')
        assert out == target
        assert json.loads(target.read_text()) == {"a": 1}

    def test_replaces_existing_atomically(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_droppings_on_success(self, tmp_path):
        atomic_write_bytes(tmp_path / "x.bin", b"\x00\x01")
        leftovers = [p for p in tmp_path.iterdir() if p.name != "x.bin"]
        assert leftovers == []

    def test_failed_write_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(target, "original")
        with pytest.raises(TypeError):
            atomic_write_bytes(target, "not-bytes")  # type: ignore[arg-type]
        assert target.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["file.txt"]


# ----------------------------------------------------------------------
# Guards
# ----------------------------------------------------------------------
class TestGuards:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(base_s=0.1, factor=2.0, cap_s=0.5)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(0) == 0.0

    def test_guard_retry_budget(self):
        guard = JobGuard(retries=2)
        assert guard.allows_retry(1)
        assert guard.allows_retry(2)
        assert not guard.allows_retry(3)
        assert not JobGuard(retries=0).allows_retry(1)

    def test_failure_payload_roundtrip(self):
        try:
            raise ValueError("boom")
        except ValueError as exc:
            failure = JobFailure.from_exception("cell-1", exc, attempts=3)
        assert failure.kind == "exception"
        assert failure.error_type == "ValueError"
        assert "boom" in failure.summary()
        restored = JobFailure.from_payload(failure.as_payload())
        assert restored == failure

    def test_sweep_error_lists_failures(self):
        failures = [
            JobFailure(job_key=f"cell-{i}", kind="timeout", attempts=2)
            for i in range(7)
        ]
        err = SweepError(failures)
        assert len(err.failures) == 7
        assert "7 job(s) failed" in str(err)
        assert "and 2 more" in str(err)

    def test_deterministic_fraction_stable_and_spread(self):
        a = deterministic_fraction("chaos", 1, "k", 1)
        assert a == deterministic_fraction("chaos", 1, "k", 1)
        assert 0.0 <= a < 1.0
        assert a != deterministic_fraction("chaos", 1, "k", 2)
        assert a != deterministic_fraction("chaos", 2, "k", 1)


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestSweepJournal:
    def test_replay_empty_when_missing(self, tmp_path):
        replay = SweepJournal(tmp_path / "absent.jsonl").replay()
        assert replay.is_empty
        assert replay.torn_lines == 0

    def test_append_and_replay(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.begin_sweep(2, meta={"workers": 2})
        journal.record_start("a", "key-a")
        journal.record_done("a", "key-a", {"makespan": 1.0})
        journal.record_failed("b", "key-b", {"kind": "timeout", "attempts": 3})
        journal.close()

        replay = journal.replay()
        assert replay.header["jobs"] == 2
        assert replay.header["workers"] == 2
        assert replay.completed == {"key-a": {"makespan": 1.0}}
        assert replay.failed == {"key-b": {"kind": "timeout", "attempts": 3}}
        assert replay.job_keys == {"key-a": "a", "key-b": "b"}

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.begin_sweep(1)
        journal.record_done("a", "key-a", {"makespan": 1.0})
        journal.close()
        # Simulate a crash mid-append: a half-written final line.
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "done", "job_key": "b", "cache_')
        replay = journal.replay()
        assert replay.torn_lines == 1
        assert set(replay.completed) == {"key-a"}

    def test_last_record_wins(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.record_failed("a", "key-a", {"kind": "exception"})
        journal.record_done("a", "key-a", {"makespan": 2.0})
        journal.close()
        replay = journal.replay()
        assert replay.completed == {"key-a": {"makespan": 2.0}}
        assert replay.failed == {}

    def test_done_superseded_by_failed(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.record_done("a", "key-a", {"makespan": 2.0})
        journal.record_failed("a", "key-a", {"kind": "worker-lost"})
        journal.close()
        replay = journal.replay()
        assert replay.completed == {}
        assert set(replay.failed) == {"key-a"}

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"kind": "sweep", "version": 99}\n')
        with pytest.raises(JournalError, match="version"):
            SweepJournal(path).replay()

    def test_appends_survive_reopen(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = SweepJournal(path)
        first.record_done("a", "key-a", {"m": 1})
        first.close()
        second = SweepJournal(path)
        second.record_done("b", "key-b", {"m": 2})
        second.close()
        replay = second.replay()
        assert set(replay.completed) == {"key-a", "key-b"}


# ----------------------------------------------------------------------
# Executor: serial path
# ----------------------------------------------------------------------
class TestSerialExecutor:
    def test_success_passthrough(self):
        executor = ResilientExecutor(ok_worker, workers=1)
        results = dict(executor.run([Item("a"), Item("b")]))
        assert {i.key for i in results} == {"a", "b"}
        assert set(results.values()) == {"a:ok", "b:ok"}

    def test_retries_then_recovers(self):
        guard = JobGuard(retries=2, backoff=FAST)
        executor = ResilientExecutor(fail_until_attempt_3, workers=1, guard=guard)
        [(item, outcome)] = list(executor.run([Item("a")]))
        assert outcome == "a:recovered"
        assert executor.retries == 2

    def test_exhausted_budget_yields_failure(self):
        guard = JobGuard(retries=1, backoff=FAST)
        executor = ResilientExecutor(always_fail, workers=1, guard=guard)
        [(item, outcome)] = list(executor.run([Item("a")]))
        assert isinstance(outcome, JobFailure)
        assert outcome.kind == "exception"
        assert outcome.attempts == 2
        assert outcome.error_type == "RuntimeError"
        assert "permanently broken" in outcome.traceback_text

    def test_should_stop_halts_before_next_item(self):
        calls = []

        def stop_after_first():
            return len(calls) >= 1

        def worker(item, attempt):
            calls.append(item.key)
            return item.key

        executor = ResilientExecutor(worker, workers=1)
        done = list(executor.run([Item("a"), Item("b"), Item("c")], should_stop=stop_after_first))
        assert len(done) == 1
        assert calls == ["a"]


# ----------------------------------------------------------------------
# Executor: supervised pool path
# ----------------------------------------------------------------------
class TestPoolExecutor:
    def test_pool_success_and_attempt_protocol(self):
        executor = ResilientExecutor(echo_attempt, workers=2)
        results = list(executor.run([Item("a"), Item("b"), Item("c")]))
        assert len(results) == 3
        assert all(outcome == 1 for _, outcome in results)

    def test_pool_retries_exception(self):
        guard = JobGuard(retries=2, backoff=FAST)
        executor = ResilientExecutor(fail_until_attempt_3, workers=2, guard=guard)
        results = dict((i.key, o) for i, o in executor.run([Item("a"), Item("b")]))
        assert results == {"a": "a:recovered", "b": "b:recovered"}

    def test_pool_survives_worker_kill(self):
        # One worker os._exit()s: BrokenProcessPool. The executor must
        # rebuild the pool and finish every job, charging at most one
        # attempt to the in-flight cohort.
        guard = JobGuard(retries=2, backoff=FAST)
        executor = ResilientExecutor(die_once, workers=2, guard=guard)
        items = [Item("victim"), Item("bystander-1"), Item("bystander-2")]
        results = dict((i.key, o) for i, o in executor.run(items))
        assert results["victim"] == "victim:survived@2"
        assert all(not isinstance(o, JobFailure) for o in results.values())
        assert executor.pool_rebuilds >= 1

    def test_kill_with_no_budget_is_worker_lost_failure(self):
        guard = JobGuard(retries=0)
        executor = ResilientExecutor(die_once, workers=2, guard=guard)
        results = dict((i.key, o) for i, o in executor.run([Item("victim")]))
        outcome = results["victim"]
        assert isinstance(outcome, JobFailure)
        assert outcome.kind == "worker-lost"
        assert outcome.attempts == 1

    def test_timeout_charges_only_the_hung_job(self):
        guard = JobGuard(timeout_s=1.0, retries=2, backoff=FAST)
        executor = ResilientExecutor(hang_once, workers=2, guard=guard)
        items = [Item("sleeper"), Item("quick")]
        results = dict((i.key, o) for i, o in executor.run(items))
        assert results["quick"] == "quick:done@1"
        assert results["sleeper"] == "sleeper:done@2"
        assert executor.timeouts == 1
        assert executor.pool_rebuilds >= 1

    def test_timeout_without_budget_fails_structurally(self):
        guard = JobGuard(timeout_s=0.5, retries=0)
        executor = ResilientExecutor(hang_once, workers=2, guard=guard)
        results = dict((i.key, o) for i, o in executor.run([Item("sleeper")]))
        outcome = results["sleeper"]
        assert isinstance(outcome, JobFailure)
        assert outcome.kind == "timeout"


# ----------------------------------------------------------------------
# Chaos planner
# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_schedule_is_deterministic(self):
        plan = ChaosPlan(seed=7, kill_prob=0.3, hang_prob=0.2, poison_prob=0.2)
        schedule = [plan.decide(f"job-{i}", a) for i in range(20) for a in (1, 2, 3)]
        again = [plan.decide(f"job-{i}", a) for i in range(20) for a in (1, 2, 3)]
        assert schedule == again
        assert set(schedule) <= set(CHAOS_ACTIONS)

    def test_max_strikes_guarantees_convergence(self):
        plan = ChaosPlan(seed=1, kill_prob=1.0, max_strikes=2)
        assert plan.decide("any", 1) == "kill"
        assert plan.decide("any", 2) == "kill"
        assert plan.decide("any", 3) == "ok"

    def test_zero_probabilities_never_strike(self):
        plan = ChaosPlan(seed=3)
        assert all(plan.decide(f"j{i}", 1) == "ok" for i in range(50))

    def test_seed_changes_schedule(self):
        kwargs = dict(kill_prob=0.25, hang_prob=0.25, poison_prob=0.25)
        a = [ChaosPlan(seed=1, **kwargs).decide(f"j{i}", 1) for i in range(64)]
        b = [ChaosPlan(seed=2, **kwargs).decide(f"j{i}", 1) for i in range(64)]
        assert a != b

    def test_chaos_worker_poison_and_passthrough(self):
        poison_plan = ChaosPlan(seed=5, poison_prob=1.0)
        worker = ChaosWorker(poison_plan, ok_worker)
        with pytest.raises(ChaosPoison):
            worker(Item("a"), 1)
        # beyond max_strikes the real worker runs
        assert worker(Item("a"), poison_plan.max_strikes + 1) == "a:ok"
        clean = ChaosWorker(ChaosPlan(seed=5), ok_worker)
        assert clean(Item("a"), 1) == "a:ok"


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    def test_first_signal_sets_flag_second_raises(self):
        with GracefulShutdown() as stop:
            assert not stop.triggered()
            os.kill(os.getpid(), signal.SIGINT)
            assert stop.requested
            assert stop.triggered()
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
        # handlers restored: default SIGINT raises KeyboardInterrupt
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGINT)

    def test_sigterm_also_drains(self):
        with GracefulShutdown() as stop:
            os.kill(os.getpid(), signal.SIGTERM)
            assert stop.triggered()

    def test_noop_outside_main_thread(self):
        results = {}

        def use_in_thread():
            with GracefulShutdown() as stop:
                results["installed"] = stop._installed
                results["triggered"] = stop.triggered()

        thread = threading.Thread(target=use_in_thread)
        thread.start()
        thread.join()
        assert results == {"installed": False, "triggered": False}
