"""Determinism suite for the incremental-stepping API (streaming mode).

The streaming service is only trustworthy if stepping is *invisible* to
the simulation: for any sequence of ``advance(until)`` boundaries, any
``max_events`` chunking and any mid-flight submission pattern that a
batch replay could also express, the processed events — and therefore
every metric — must be bit-identical to a single uninterrupted
``run()``.  This file is that contract:

* chunked vs batch identity across every registry scheduler family and
  a scenario cross-section (static, chaos/dynamics, ingested trace);
* a hypothesis property drawing *random* chunk boundaries and
  ``max_events`` throttles;
* the mid-flight submission regression: a streamed task timestamped
  exactly equal to an already-heaped event must land where a batch
  replay of the merged trace puts it (arrival tie-break on task id).
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import assert_metrics_identical, build_task
from repro.cluster import GPUModel, reset_task_counter
from repro.cluster.simulator import ClusterSimulator, SimulationError, SimulatorConfig
from repro.cluster.task import TaskType
from repro.dynamics import FaultInjector
from repro.experiments.engine import SchedulerSpec, build_scheduler
from repro.workloads import get_scenario

FIXTURES = Path(__file__).parent / "fixtures"

#: every scheduler family in the registry (ablations share the GFS code
#: paths; gfs-p adds the PTS placement stage on top)
SCHEDULERS = ("yarn-cs", "chronus", "lyra", "fgd", "pts", "gfs", "gfs-p")

#: static, chaotic (cluster dynamics) and ingested-trace scenarios
SCENARIOS = ("default", "burst", "hetero", "node_churn", f"trace:{FIXTURES / 'philly_small.csv'}")

NUM_NODES = 10
DURATION_HOURS = 6.0
SPOT_SCALE = 2.0
SEED = 3


def build_sim(
    scheduler_kind: str,
    scenario_name: str = "default",
    *,
    num_nodes: int = NUM_NODES,
    duration_hours: float = DURATION_HOURS,
    max_time: float = None,
    submit: bool = True,
) -> ClusterSimulator:
    """One streaming-capable simulator, deterministic in its arguments.

    Mirrors ``experiments.engine.execute_job`` (task-counter reset, the
    scenario's own dynamics seeded from ``SEED``) so batch and stepped
    runs built by successive calls are comparisons of identical inputs.
    """
    reset_task_counter()
    scenario = get_scenario(scenario_name)
    cluster = scenario.build_cluster(num_nodes, 8, GPUModel.A100)
    trace = scenario.build_trace(
        cluster_gpus=cluster.total_gpus(),
        duration_hours=duration_hours,
        spot_scale=SPOT_SCALE,
        seed=SEED,
    )
    scheduler = build_scheduler(SchedulerSpec(kind=scheduler_kind), trace)
    dynamics = (
        FaultInjector(scenario.dynamics, seed=SEED) if scenario.dynamics is not None else None
    )
    sim = ClusterSimulator(
        cluster, scheduler, SimulatorConfig(max_time=max_time), dynamics=dynamics
    )
    if submit:
        sim.submit_all(trace.sorted_tasks())
    return sim


def run_chunked(sim: ClusterSimulator, boundaries, max_events=None):
    """Advance through ``boundaries`` then drain; returns metrics."""
    for until in boundaries:
        sim.advance(until=until, max_events=max_events)
        if max_events is not None:
            # A throttled call may stop short of the boundary: drain it.
            while sim.advance(until=until, max_events=max_events):
                pass
    sim.advance()
    return sim.finalize()


# ----------------------------------------------------------------------
# Chunked == batch across the registry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scenario_name", SCENARIOS)
@pytest.mark.parametrize("scheduler_kind", SCHEDULERS)
def test_chunked_advance_matches_batch(scheduler_kind, scenario_name):
    batch = build_sim(scheduler_kind, scenario_name).run()
    sim = build_sim(scheduler_kind, scenario_name)
    horizon = DURATION_HOURS * 3600.0
    boundaries = [horizon * f for f in (0.1, 0.25, 0.5, 0.75, 1.0, 1.5)]
    chunked = run_chunked(sim, boundaries)
    assert_metrics_identical(chunked, batch, f"{scheduler_kind}/{scenario_name}")


def test_single_event_stepping_matches_batch():
    """The most adversarial chunking: one event per advance() call."""
    batch = build_sim("gfs").run()
    sim = build_sim("gfs")
    while sim.advance(max_events=1):
        pass
    assert_metrics_identical(sim.finalize(), batch, "max_events=1")


def test_max_time_cap_is_chunk_invariant():
    cap = DURATION_HOURS * 1800.0  # half the trace span
    batch = build_sim("fgd", max_time=cap).run()
    sim = build_sim("fgd", max_time=cap)
    chunked = run_chunked(sim, [cap * f for f in (0.3, 0.6, 0.9, 2.0)])
    assert_metrics_identical(chunked, batch, "max_time cap")
    assert sim.done


def test_mid_run_finalize_does_not_perturb_final_metrics():
    """Live metric queries must be free of observer effects."""
    batch = build_sim("gfs").run()
    sim = build_sim("gfs")
    horizon = DURATION_HOURS * 3600.0
    for fraction in (0.2, 0.5, 0.8):
        sim.advance(until=horizon * fraction)
        sim.finalize()  # live query, result intentionally discarded
    sim.advance()
    assert_metrics_identical(sim.finalize(), batch, "mid-run finalize")


def test_run_still_rejects_empty_simulator():
    with pytest.raises(SimulationError):
        build_sim("gfs", submit=False).run()


def test_advance_on_empty_streaming_session_is_lawful():
    """A session awaiting its first submission advances without work."""
    sim = build_sim("gfs", submit=False)
    # Start arms one quota tick; with no work anywhere the chain dies there.
    assert sim.advance(until=3600.0) <= 1
    assert sim.started and sim.done
    task = build_task(duration=1800.0, submit_time=0.0, gpus_per_pod=4.0)
    sim.submit(task)
    assert not sim.done
    sim.advance()
    assert task.finish_time is not None


# ----------------------------------------------------------------------
# Hypothesis: random chunk boundaries and throttles (satellite property)
# ----------------------------------------------------------------------
_BATCH_CACHE = {}


def _batch_metrics(kind: str):
    if kind not in _BATCH_CACHE:
        _BATCH_CACHE[kind] = build_sim(kind, duration_hours=3.0).run()
    return _BATCH_CACHE[kind]


@settings(max_examples=12, deadline=None)
@given(
    kind=st.sampled_from(("gfs", "fgd", "chronus")),
    fractions=st.lists(st.floats(min_value=0.0, max_value=2.0), max_size=8),
    max_events=st.one_of(st.none(), st.integers(min_value=1, max_value=97)),
)
def test_random_chunk_boundaries_match_batch(kind, fractions, max_events):
    """Any boundary sequence — unsorted, duplicated, past-the-end, zero —
    and any per-call event throttle reproduce the batch run exactly."""
    sim = build_sim(kind, duration_hours=3.0)
    boundaries = [3.0 * 3600.0 * f for f in fractions]
    chunked = run_chunked(sim, boundaries, max_events=max_events)
    assert_metrics_identical(chunked, _batch_metrics(kind), f"random chunks {kind}")


# ----------------------------------------------------------------------
# Mid-flight submission: heap order == merged-trace order (regression)
# ----------------------------------------------------------------------
def _streaming_tasks(split_time: float):
    """A base load plus a second wave timestamped *exactly* at events the
    first wave already put on the heap (arrival and finish ties)."""
    reset_task_counter()
    base = [
        build_task(duration=1800.0, submit_time=i * 600.0, gpus_per_pod=4.0, num_pods=2)
        for i in range(8)
    ]
    late = [
        # Equal to a heaped arrival time (i=6 submits at 3600.0) and to
        # the split itself; ids sort before/after base ids to exercise
        # both directions of the tie.
        build_task(duration=900.0, submit_time=3600.0, gpus_per_pod=2.0, task_id="aaa-early-id"),
        build_task(duration=900.0, submit_time=3600.0, gpus_per_pod=2.0, task_id="zzz-late-id"),
        build_task(duration=900.0, submit_time=split_time, gpus_per_pod=8.0,
                   task_type=TaskType.HP, task_id="hp-at-split"),
    ]
    return base, late


def test_mid_flight_submit_matches_merged_batch():
    """Streamed submissions == batch replay of the merged trace.

    The regression this pins: a submission timestamped equal to an
    already-heaped event used to sort purely by push sequence, diverging
    from ``Trace.sorted_tasks()``'s ``(submit_time, task_id)`` order.
    """
    split = 3600.0

    base, late = _streaming_tasks(split)
    batch_sim = build_sim("gfs", submit=False)
    batch_sim.submit_all(sorted(base + late, key=lambda t: (t.submit_time, t.task_id)))
    batch = batch_sim.run()

    base, late = _streaming_tasks(split)
    stream_sim = build_sim("gfs", submit=False)
    stream_sim.submit_all(base)
    # Stop strictly before the tie timestamp: the late wave must race the
    # heaped-but-unprocessed events at t=3600, not arrive after them.
    stream_sim.advance(until=split - 600.0)
    stream_sim.submit_all(late)  # arrives mid-flight, timestamped at ties
    stream_sim.advance()
    assert_metrics_identical(stream_sim.finalize(), batch, "mid-flight ties")


def test_arrival_tie_breaks_on_task_id_not_push_order():
    """The heap must agree with ``Trace.sorted_tasks()`` on equal stamps.

    Two unplaceable tasks share one submit time; the one with the
    lexically-smaller id is streamed in *later* (larger push sequence).
    It must still be processed first — pending-queue insertion order is
    the observable — because arrivals tie-break on task id, not on the
    order they reached the heap.  Without the tie-break field this
    asserts the exact inversion the bug produced.
    """
    sim = build_sim("yarn-cs", submit=False)
    giant = dict(duration=3600.0, gpus_per_pod=8.0, num_pods=60)  # > fleet, stays pending
    sim.submit(build_task(submit_time=3600.0, task_id="mmm-heaped-first", **giant))
    sim.advance(until=3000.0)
    sim.submit(build_task(submit_time=3600.0, task_id="aaa-streamed-later", **giant))
    sim.advance(until=3600.0)
    assert [t.task_id for t in sim.pending] == ["aaa-streamed-later", "mmm-heaped-first"]


def test_past_timestamped_submission_is_clamped_to_now():
    sim = build_sim("gfs", submit=False)
    base, _ = _streaming_tasks(3600.0)
    sim.submit_all(base)
    sim.advance(until=3600.0)
    stale = build_task(duration=600.0, submit_time=0.0, gpus_per_pod=1.0, task_id="stale-task")
    sim.submit(stale)
    assert sim._events[0].time >= sim.now  # the clock never runs backwards
    sim.advance()
    assert stale.finish_time is not None
    assert stale.first_start_time >= 3600.0


def test_submission_revives_drained_session():
    """A drained streaming session must come back to life on submit —
    including its periodic tick chain (allocation sampling resumes)."""
    sim = build_sim("gfs", submit=False)
    first = build_task(duration=1200.0, submit_time=0.0, gpus_per_pod=4.0)
    sim.submit(first)
    sim.advance()
    assert sim.done and first.finish_time is not None
    samples_before = len(sim.allocation_samples)
    second = build_task(duration=1200.0, submit_time=sim.now, gpus_per_pod=4.0)
    sim.submit(second)
    sim.advance()
    assert second.finish_time is not None
    assert len(sim.allocation_samples) > samples_before  # tick chain revived


def test_mid_flight_inject_matches_scheduled_dynamics():
    """inject() at time T == the same action pre-scheduled at T."""
    from repro.cluster.events import DynamicsAction, EventKind

    down = DynamicsAction(node_id="a100-sim-0003", cause="failure", graceful=False, online=False)
    up = DynamicsAction(node_id="a100-sim-0003", cause="failure", graceful=False, online=True)

    pre = build_sim("gfs")
    pre.inject(down, time=3600.0, kind=EventKind.NODE_FAIL)
    pre.inject(up, time=7200.0, kind=EventKind.NODE_REPAIR)
    batch = pre.run()

    live = build_sim("gfs")
    live.advance(until=1800.0)
    live.inject(down, time=3600.0, kind=EventKind.NODE_FAIL)
    live.inject(up, time=7200.0, kind=EventKind.NODE_REPAIR)
    live.advance()
    assert_metrics_identical(live.finalize(), batch, "mid-flight inject")
    assert batch.reliability.node_failures == 1
