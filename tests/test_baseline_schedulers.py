"""Tests for the four baseline schedulers and the scheduler registry."""

import pytest

from repro.cluster import Cluster, GPUModel, PodPlacement, TaskType, run_simulation
from repro.schedulers import (
    ChronusScheduler,
    FGDScheduler,
    LyraScheduler,
    YarnCSScheduler,
    available_schedulers,
    create_scheduler,
    fragmentation_after,
)
from repro.schedulers.placement import NodeView
from tests.conftest import build_task


@pytest.fixture
def cluster():
    return Cluster.homogeneous(4, 8, GPUModel.A100)


def occupy(cluster, task, node_index=0):
    node = cluster.nodes[node_index]
    cluster.place_task(task, [PodPlacement(node_id=node.node_id, gpu_indices=())] * task.num_pods)
    task.run_logs.append(__import__("repro.cluster.task", fromlist=["RunLog"]).RunLog(start=0.0))
    return task


class TestYarnCS:
    def test_places_when_capacity_available(self, cluster):
        decision = YarnCSScheduler().try_schedule(build_task(TaskType.HP, gpus_per_pod=8.0), cluster, 0.0)
        assert decision is not None
        assert not decision.requires_preemption

    def test_hp_preempts_spot_when_full(self, cluster):
        scheduler = YarnCSScheduler()
        for i in range(4):
            occupy(cluster, build_task(TaskType.SPOT, gpus_per_pod=8.0), node_index=i)
        decision = scheduler.try_schedule(build_task(TaskType.HP, gpus_per_pod=8.0), cluster, 100.0)
        assert decision is not None
        assert decision.requires_preemption
        assert len(decision.preempted_task_ids) >= 1

    def test_spot_never_preempts(self, cluster):
        scheduler = YarnCSScheduler()
        for i in range(4):
            occupy(cluster, build_task(TaskType.HP, gpus_per_pod=8.0), node_index=i)
        decision = scheduler.try_schedule(build_task(TaskType.SPOT, gpus_per_pod=1.0), cluster, 0.0)
        assert decision is None

    def test_fcfs_blocking_for_spot_only(self):
        scheduler = YarnCSScheduler()
        assert scheduler.blocks_on_failure(build_task(TaskType.SPOT))
        assert not scheduler.blocks_on_failure(build_task(TaskType.HP))

    def test_queue_sorted_fcfs(self):
        scheduler = YarnCSScheduler()
        late = build_task(TaskType.HP, submit_time=100.0)
        early = build_task(TaskType.SPOT, submit_time=10.0)
        assert scheduler.sort_queue([late, early], 0.0)[0] is early


class TestChronus:
    def test_lease_alignment_delay(self, cluster):
        scheduler = ChronusScheduler(hp_lease=1200.0, spot_lease=300.0)
        decision = scheduler.try_schedule(build_task(TaskType.HP, gpus_per_pod=1.0), cluster, 100.0)
        assert decision is not None
        assert decision.start_delay == pytest.approx(1100.0)

    def test_no_delay_exactly_on_boundary(self, cluster):
        scheduler = ChronusScheduler(hp_lease=1200.0)
        decision = scheduler.try_schedule(build_task(TaskType.HP, gpus_per_pod=1.0), cluster, 2400.0)
        assert decision.start_delay == pytest.approx(0.0)

    def test_never_preempts(self, cluster):
        scheduler = ChronusScheduler()
        for i in range(4):
            occupy(cluster, build_task(TaskType.SPOT, gpus_per_pod=8.0), node_index=i)
        decision = scheduler.try_schedule(build_task(TaskType.HP, gpus_per_pod=8.0), cluster, 400.0)
        assert decision is None


class TestLyra:
    def test_spot_only_on_hp_free_nodes(self, cluster):
        scheduler = LyraScheduler(capacity_reserve=0.0)
        occupy(cluster, build_task(TaskType.HP, gpus_per_pod=4.0), node_index=0)
        decision = scheduler.try_schedule(build_task(TaskType.SPOT, gpus_per_pod=2.0), cluster, 0.0)
        assert decision is not None
        assert decision.placements[0].node_id != cluster.nodes[0].node_id

    def test_capacity_reserve_blocks_spot(self, cluster):
        scheduler = LyraScheduler(capacity_reserve=1.0)  # reserve the whole cluster
        decision = scheduler.try_schedule(build_task(TaskType.SPOT, gpus_per_pod=1.0), cluster, 0.0)
        assert decision is None

    def test_hp_reclaims_loaned_nodes(self, cluster):
        scheduler = LyraScheduler(capacity_reserve=0.0)
        for i in range(4):
            occupy(cluster, build_task(TaskType.SPOT, gpus_per_pod=8.0), node_index=i)
        decision = scheduler.try_schedule(build_task(TaskType.HP, gpus_per_pod=8.0), cluster, 50.0)
        assert decision is not None
        assert decision.requires_preemption


class TestFGD:
    def test_fragmentation_measure(self, cluster):
        view = NodeView.from_node(cluster.nodes[0])
        # Placing a 3-GPU pod on an empty 8-GPU node leaves 5 idle; one more
        # 3-GPU pod would fit, leaving a 2-GPU fragment.
        assert fragmentation_after(view, 3.0) == pytest.approx(2.0)
        assert fragmentation_after(view, 8.0) == pytest.approx(0.0)

    def test_prefers_tight_fit(self, cluster):
        # Node 2 has exactly 3 idle GPUs; a 3-GPU pod fits with zero fragment
        # there, while an empty node would be left with a 2-GPU fragment.
        cluster.nodes[2].allocate_pod(build_task(TaskType.HP, gpus_per_pod=5.0))
        decision = FGDScheduler().try_schedule(build_task(TaskType.HP, gpus_per_pod=3.0), cluster, 0.0)
        assert decision.placements[0].node_id == cluster.nodes[2].node_id

    def test_preempts_when_needed(self, cluster):
        scheduler = FGDScheduler()
        for i in range(4):
            occupy(cluster, build_task(TaskType.SPOT, gpus_per_pod=8.0), node_index=i)
        decision = scheduler.try_schedule(build_task(TaskType.HP, gpus_per_pod=8.0), cluster, 10.0)
        assert decision is not None
        assert decision.requires_preemption


class TestRegistry:
    def test_all_schedulers_available(self):
        names = available_schedulers()
        for expected in ("yarn-cs", "chronus", "lyra", "fgd", "gfs", "gfs-e", "gfs-sp"):
            assert expected in names

    def test_create_by_name(self):
        assert create_scheduler("Lyra").name == "Lyra"
        assert create_scheduler("GFS").name == "GFS"
        assert create_scheduler("gfs-p").name == "GFS-P"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            create_scheduler("slurm")


class TestBaselineEndToEnd:
    @pytest.mark.parametrize("scheduler_cls", [YarnCSScheduler, ChronusScheduler, LyraScheduler, FGDScheduler])
    def test_small_simulation_completes(self, scheduler_cls, tiny_trace):
        cluster = Cluster.homogeneous(16, 8, GPUModel.A100)
        metrics = run_simulation(cluster, scheduler_cls(), tiny_trace.sorted_tasks()[:120])
        assert metrics.unfinished_tasks == 0
        assert metrics.hp.count > 0
