"""Sweep-plane telemetry and structured logging.

Covers the :class:`TelemetryBus` contract (envelope, schema validation,
sink fault isolation), every bundled sink (JSONL, TTY progress,
Prometheus + its HTTP server), the engine/executor event wiring
(lifecycle events for real sweeps, including failures and retries), and
the JSON-lines structured logger.
"""

from __future__ import annotations

import http.client
import io
import json
import logging

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.engine import (
    ExperimentEngine,
    WorkloadSpec,
    gfs_spec,
    sweep_jobs,
)
from repro.obs.logging import (
    StructuredLogger,
    configure_json_logging,
    get_logger,
    json_log_line,
    new_run_id,
    parse_log_line,
)
from repro.obs.prometheus import parse_prometheus_text
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    TELEMETRY_EVENT_FIELDS,
    JsonlSink,
    MetricsServer,
    PrometheusSink,
    TelemetryBus,
    TTYProgressSink,
    validate_telemetry_line,
    validate_telemetry_record,
)
from repro.runtime import JobGuard

SCALE = ExperimentScale(name="tele-test", num_nodes=4, duration_hours=2.0)


def _grid(seeds: int = 2):
    return sweep_jobs(
        SCALE, [gfs_spec()], [WorkloadSpec(seed_offset=i) for i in range(seeds)]
    )


def _capture_run(engine_kwargs=None, jobs=None):
    buf = io.StringIO()
    bus = TelemetryBus(run_id="t-run", sinks=[JsonlSink(buf)])
    engine = ExperimentEngine(
        workers=1, cache=None, use_cache=False, telemetry=bus, **(engine_kwargs or {})
    )
    jobs = _grid() if jobs is None else jobs
    error = None
    try:
        engine.run(jobs)
    except Exception as exc:  # noqa: BLE001 - failure paths are under test
        error = exc
    bus.close()
    records = [
        validate_telemetry_line(line)
        for line in buf.getvalue().splitlines()
        if line.strip()
    ]
    return engine, records, error


# ----------------------------------------------------------------------
# Bus contract
# ----------------------------------------------------------------------
def test_bus_stamps_envelope_and_monotonic_seq():
    buf = io.StringIO()
    bus = TelemetryBus(run_id="r-1", sinks=[JsonlSink(buf)])
    bus.emit("sweep_start", cells=3, workers=2)
    bus.emit("cache_hit", job="a")
    bus.emit("sweep_end", done=3, total=3, failed=0, executed=2,
             cache_hits=1, journal_hits=0, wall_s=0.5)
    bus.close()
    records = [validate_telemetry_line(l) for l in buf.getvalue().splitlines()]
    assert [r["seq"] for r in records] == [1, 2, 3]
    assert all(r["run_id"] == "r-1" for r in records)
    assert all(isinstance(r["ts"], float) for r in records)
    assert bus.emitted == 3 and bus.sink_errors == 0


def test_bus_generates_run_id_when_absent():
    bus = TelemetryBus()
    assert bus.run_id.startswith("sweep-")
    assert bus.enabled is True


def test_validation_rejects_malformed_records():
    with pytest.raises(ValueError):
        validate_telemetry_record({"seq": 1, "ts": 0.0, "run_id": "r", "event": "nope"})
    with pytest.raises(ValueError):
        validate_telemetry_record({"seq": 1, "ts": 0.0, "run_id": "r",
                                   "event": "job_done", "job": "x"})  # no wall_s
    with pytest.raises(ValueError):
        validate_telemetry_record({"event": "cache_hit", "job": "x"})  # no envelope
    with pytest.raises(ValueError):
        validate_telemetry_line("[1, 2, 3]")
    # every documented type validates with exactly its required fields
    for event, fields in TELEMETRY_EVENT_FIELDS.items():
        record = {"seq": 1, "ts": 0.0, "run_id": "r", "event": event}
        record.update({f: 0 for f in fields})
        validate_telemetry_record(record)


def test_faulty_sink_is_disabled_and_never_raises():
    class Boom:
        calls = 0

        def handle(self, record):
            Boom.calls += 1
            raise RuntimeError("sink exploded")

        def close(self):
            pass

    buf = io.StringIO()
    bus = TelemetryBus(run_id="r", sinks=[Boom(), JsonlSink(buf)])
    bus.emit("cache_hit", job="a")  # must not raise
    bus.emit("cache_hit", job="b")
    bus.close()
    assert Boom.calls == 1  # disabled after the first failure
    assert bus.sink_errors == 1
    assert len(buf.getvalue().splitlines()) == 2  # healthy sink unaffected


def test_null_bus_is_inert():
    assert NULL_TELEMETRY.enabled is False
    NULL_TELEMETRY.emit("anything", whatever=1)  # no validation, no effect
    NULL_TELEMETRY.close()
    assert NULL_TELEMETRY.emitted == 0


def test_jsonl_sink_appends_to_path(tmp_path):
    path = tmp_path / "tele.jsonl"
    for chunk in range(2):
        sink = JsonlSink(str(path))
        sink.handle({"seq": chunk, "ts": 0.0, "run_id": "r", "event": "cache_hit",
                     "job": f"j{chunk}"})
        sink.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 2  # append mode: reopening never truncates
    assert [validate_telemetry_line(l)["job"] for l in lines] == ["j0", "j1"]


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
def _progress(done, total, **extra):
    rec = {"seq": 1, "ts": 0.0, "run_id": "r", "event": "progress",
           "done": done, "total": total, "failed": 0,
           "rate_per_s": 2.0, "eta_s": 5.0}
    rec.update(extra)
    return rec


def test_tty_sink_plain_lines_on_pipe():
    buf = io.StringIO()  # not a TTY
    sink = TTYProgressSink(buf, min_interval_s=0.0)
    sink.handle({"seq": 1, "ts": 0.0, "run_id": "r-x", "event": "sweep_start",
                 "cells": 4, "workers": 2})
    sink.handle({"seq": 2, "ts": 0.0, "run_id": "r-x", "event": "job_fail",
                 "job": "cell-3", "kind": "timeout", "attempts": 3})
    sink.handle({"seq": 3, "ts": 0.0, "run_id": "r-x", "event": "sweep_end",
                 "done": 3, "total": 4, "failed": 1, "executed": 3,
                 "cache_hits": 0, "journal_hits": 0, "wall_s": 1.5})
    sink.close()
    out = buf.getvalue()
    assert "\x1b[" not in out  # no ANSI on a pipe
    assert "4 cells on 2 worker(s)" in out
    assert "FAIL cell-3 (timeout, 3 attempts)" in out
    assert "sweep done: 3/4 cells" in out and "failed=1" in out


def test_tty_sink_ansi_bar_on_tty():
    class FakeTTY(io.StringIO):
        def isatty(self):
            return True

    buf = FakeTTY()
    sink = TTYProgressSink(buf, min_interval_s=0.0)
    sink.handle(_progress(1, 4))
    sink.handle(_progress(2, 4))
    sink.close()
    out = buf.getvalue()
    assert out.count("\x1b[2K\r") == 2  # in-place rewrite, one line
    assert "2/4 cells" in out and "eta=5s" in out


def test_prometheus_sink_aggregates_and_serves():
    sink = PrometheusSink()
    sink.handle({"seq": 1, "ts": 0.0, "run_id": "r", "event": "sweep_start",
                 "cells": 10, "workers": 4})
    for i in range(3):
        sink.handle({"seq": 2 + i, "ts": 0.0, "run_id": "r", "event": "job_done",
                     "job": f"j{i}", "wall_s": 0.1})
    sink.handle({"seq": 5, "ts": 0.0, "run_id": "r", "event": "job_retry",
                 "job": "j9", "attempt": 2, "delay_s": 0.2})
    sink.handle(_progress(3, 10, seq=6))
    page = sink.render()
    by_name = parse_prometheus_text(page)
    assert by_name["repro_sweep_jobs_done_total"] == 3.0
    assert by_name["repro_sweep_retries_total"] == 1.0
    assert by_name["repro_sweep_cells_total"] == 10.0
    assert by_name["repro_sweep_cells_done"] == 3.0
    assert by_name["repro_sweep_rate_cells_per_second"] == 2.0

    server = MetricsServer(sink, port=0).start()
    try:
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        body = resp.read().decode("utf-8")
        assert resp.status == 200
        assert body == page
        conn.request("GET", "/nope")
        assert conn.getresponse().status == 404
        conn.close()
    finally:
        server.stop()


# ----------------------------------------------------------------------
# Engine + executor wiring
# ----------------------------------------------------------------------
def test_engine_emits_full_lifecycle():
    engine, records, error = _capture_run()
    assert error is None
    events = [r["event"] for r in records]
    assert events[0] == "sweep_start" and events[-1] == "sweep_end"
    assert events.count("job_start") == 2
    assert events.count("job_done") == 2
    assert events.count("progress") == 2
    start = records[0]
    assert start["cells"] == 2 and start["workers"] == 1
    end = records[-1]
    assert end["done"] == 2 and end["failed"] == 0 and end["executed"] == 2
    assert end["wall_s"] > 0
    progress = [r for r in records if r["event"] == "progress"]
    assert [p["done"] for p in progress] == [1, 2]
    assert all(p["total"] == 2 for p in progress)
    assert progress[0]["rate_per_s"] > 0


def test_engine_emits_cache_and_journal_hits(tmp_path):
    from repro.experiments.artifacts import ArtifactCache

    cache = ArtifactCache(str(tmp_path / "cache"))
    jobs = _grid()
    warm = ExperimentEngine(workers=1, cache=cache)
    warm.run(jobs)

    buf = io.StringIO()
    bus = TelemetryBus(run_id="t-hits", sinks=[JsonlSink(buf)])
    engine = ExperimentEngine(workers=1, cache=cache, telemetry=bus)
    engine.run(jobs)
    bus.close()
    records = [validate_telemetry_line(l) for l in buf.getvalue().splitlines()]
    events = [r["event"] for r in records]
    assert events.count("cache_hit") == len(jobs)
    assert "job_start" not in events  # nothing simulated twice
    end = records[-1]
    assert end["cache_hits"] == len(jobs) and end["executed"] == 0


def test_engine_emits_failures_and_retries():
    # an impossible scenario: zero-duration trace -> no tasks -> SimulationError
    bad_scale = ExperimentScale(name="broken", num_nodes=2, duration_hours=0.001)
    jobs = sweep_jobs(bad_scale, [gfs_spec()], [WorkloadSpec()])
    engine, records, error = _capture_run(
        engine_kwargs={"guard": JobGuard(retries=1, strict=False)}, jobs=jobs
    )
    events = [r["event"] for r in records]
    assert error is None  # strict=False: failures reported, not raised
    assert "job_retry" in events
    assert "job_fail" in events
    fail = next(r for r in records if r["event"] == "job_fail")
    assert fail["kind"] == "exception" and fail["attempts"] == 2
    retry = next(r for r in records if r["event"] == "job_retry")
    assert retry["delay_s"] >= 0
    end = records[-1]
    assert end["failed"] == 1 and end["done"] == 0


def test_engine_without_telemetry_uses_null_bus():
    engine = ExperimentEngine(workers=1)
    assert engine.telemetry is NULL_TELEMETRY


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------
def test_json_log_line_roundtrip_and_coercion():
    line = json_log_line("INFO", "http_request", {
        "status": 200, "duration_ms": 1.25, "bad_float": float("nan"),
        "path": "/sessions", "extras": {"a": (1, 2)},
    })
    record = parse_log_line(line)
    assert record["level"] == "info" and record["event"] == "http_request"
    assert record["status"] == 200
    assert record["bad_float"] == "nan"  # NaN never breaks a parser
    assert record["extras"] == {"a": [1, 2]}
    keys = list(record)
    assert keys[:3] == ["ts", "level", "event"]


def test_parse_log_line_rejects_unstructured_text():
    with pytest.raises(ValueError):
        parse_log_line('{"no_event": 1}')
    with pytest.raises(json.JSONDecodeError):
        parse_log_line("GET /sessions 200")


def test_bind_is_immutable_and_stamps_fields(caplog):
    base = get_logger("repro.test_tele")
    bound = base.bind(run_id="r-9", session_id="s-1")
    rebound = bound.bind(session_id="s-2")
    assert bound.bound_fields == {"run_id": "r-9", "session_id": "s-1"}
    assert rebound.bound_fields["session_id"] == "s-2"
    assert base.bound_fields == {}
    with caplog.at_level(logging.INFO, logger="repro.test_tele"):
        rebound.info("thing_happened", detail=7)
    record = parse_log_line(caplog.records[-1].getMessage())
    assert record["run_id"] == "r-9"
    assert record["session_id"] == "s-2"
    assert record["detail"] == 7


def test_logger_skips_rendering_below_level():
    class Exploding:
        def __str__(self):
            raise AssertionError("rendered a suppressed log line")

    log = get_logger("repro.test_tele.silent")
    # DEBUG is not enabled: the field must never be stringified
    log.debug("expensive", payload=Exploding())


def test_configure_json_logging_installs_and_returns_handler():
    assert configure_json_logging(None) is None
    stream = io.StringIO()
    handler = configure_json_logging("info", "repro.test_tele.cfg", stream=stream)
    try:
        get_logger("repro.test_tele.cfg").info("configured", ok=True)
        record = parse_log_line(stream.getvalue().strip())
        assert record["event"] == "configured" and record["ok"] is True
    finally:
        logging.getLogger("repro.test_tele.cfg").removeHandler(handler)


def test_new_run_id_is_prefixed_and_unique():
    ids = {new_run_id("sweep") for _ in range(32)}
    assert len(ids) == 32
    assert all(i.startswith("sweep-") for i in ids)


# ----------------------------------------------------------------------
# validate CLI (the stream-smoke gate)
# ----------------------------------------------------------------------
def test_validate_cli_accepts_good_and_rejects_bad(tmp_path, capsys):
    from repro.obs.telemetry import main as telemetry_main

    good = tmp_path / "good.jsonl"
    buf = io.StringIO()
    bus = TelemetryBus(run_id="r", sinks=[JsonlSink(str(good))])
    bus.emit("sweep_start", cells=1, workers=1)
    bus.emit("sweep_end", done=1, total=1, failed=0, executed=1,
             cache_hits=0, journal_hits=0, wall_s=0.1)
    bus.close()
    assert telemetry_main(["validate", str(good)]) == 0
    out = capsys.readouterr().out
    assert "2 valid telemetry records" in out
    assert "sweep_start=1" in out and "sweep_end=1" in out

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"seq":1,"ts":0,"run_id":"r","event":"job_done","job":"x"}\n')
    assert telemetry_main(["validate", str(bad)]) == 1
    assert telemetry_main(["nonsense"]) == 2
