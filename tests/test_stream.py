"""Live session streams: determinism, lossless resume, zero observer effect.

The load-bearing guarantees of ``GET /sessions/{id}/stream``:

* **chunking invariance** — the SSE byte sequence for a fixed
  (scenario, seed, operations) is identical no matter how the session
  was stepped (one ``advance`` or fifty), because events are a pure
  function of simulation content;
* **lossless resume** — disconnecting mid-stream and reconnecting with
  ``Last-Event-ID`` yields, concatenated, exactly the bytes an
  uninterrupted subscriber saw;
* **zero observer effect** — 0 vs N subscribers (including churn and
  slow readers) leave ``SimulationMetrics`` and snapshot bytes
  bit-identical;
* **drop accounting** — a subscriber that falls off the bounded ring
  gets an explicit ``gap`` event with the missed count; the simulator
  is never throttled.

pytest-asyncio is deliberately not a dependency: each test owns its
loop via ``asyncio.run`` (same convention as ``tests/test_service.py``).
"""

from __future__ import annotations

import asyncio
import json
import pickle

import pytest

from repro.service import AsyncServiceClient, SchedulerServer, ServiceError
from repro.service.session import SessionError, SimulationSession
from repro.service.stream import (
    HEARTBEAT_FRAME,
    SessionStream,
    gap_frame,
    parse_sse_stream,
)

PARAMS = {"scheduler": "gfs", "num_nodes": 6, "duration_hours": 4.0, "seed": 11}


def _payload(task_id: str, submit_time: float, *, hp: bool = False, gpus: float = 4.0) -> dict:
    return {
        "task_id": task_id,
        "task_type": 1 if hp else 0,
        "num_pods": 1,
        "gpus_per_pod": gpus,
        "duration": 1800.0,
        "submit_time": submit_time,
        "org": "org-a" if hp else "org-b",
    }


def _wave(prefix: str, count: int, start: float = 0.0) -> list:
    return [
        _payload(f"{prefix}-{i:03d}", start + i * 120.0, hp=(i % 3 == 0))
        for i in range(count)
    ]


def _drain(subscriber) -> str:
    frames, missed = subscriber.poll()
    assert missed == 0
    return "".join(frames)


def _strip_heartbeats(raw: bytes) -> bytes:
    """Raw SSE bytes minus comment frames (heartbeats are timing, not data)."""
    kept = [
        block
        for block in raw.split(b"\n\n")
        if block.strip() and not block.startswith(b":")
    ]
    return b"\n\n".join(kept) + (b"\n\n" if kept else b"")


# ----------------------------------------------------------------------
# Ring mechanics (no simulator)
# ----------------------------------------------------------------------
def test_ring_sequence_and_frame_format():
    stream = SessionStream("s", backlog=16)
    assert stream.emit("tick", {"t": 1.0}) == 1
    assert stream.emit("tick", {"b": 2, "a": 1}) == 2
    sub = stream.subscribe(after_seq=1)  # resume past seq 1
    frames, missed = sub.poll()
    assert missed == 0
    assert frames == ['id: 2\nevent: tick\ndata: {"a":1,"b":2}\n\n']
    (event,) = parse_sse_stream(frames[0])
    assert event == {"id": "2", "event": "tick", "data": '{"a":1,"b":2}'}


def test_fresh_subscriber_starts_at_live_edge():
    stream = SessionStream("s", backlog=16)
    for i in range(5):
        stream.emit("tick", {"i": i})
    sub = stream.subscribe()
    frames, missed = sub.poll()
    assert frames == [] and missed == 0  # history is for resumers only
    stream.emit("tick", {"i": 99})
    frames, _ = sub.poll()
    assert len(frames) == 1 and '"i":99' in frames[0]


def test_slow_subscriber_gets_gap_accounting_not_backpressure():
    stream = SessionStream("s", backlog=4)
    sub = stream.subscribe()
    for i in range(10):
        stream.emit("tick", {"i": i})  # never blocks on the slow reader
    frames, missed = sub.poll()
    assert len(frames) == 4  # only the ring's worth survive
    assert missed == 6
    assert sub.dropped == 6
    stats = stream.stats()
    assert stats["expired"] == 6
    assert stats["subscriber_drops"] == 6
    assert stats["last_seq"] == 10
    # the gap frame is subscription-local: no id line, so it can never
    # collide with the event sequence on resume
    assert gap_frame(missed) == 'event: gap\ndata: {"missed":6}\n\n'
    (gap,) = parse_sse_stream(gap_frame(missed))
    assert gap["id"] is None and gap["event"] == "gap"


def test_stream_is_never_picklable():
    stream = SessionStream("s")
    with pytest.raises(TypeError):
        pickle.dumps(stream)


def test_heartbeats_are_invisible_to_the_parser():
    text = HEARTBEAT_FRAME + "id: 1\nevent: tick\ndata: {}\n\n" + HEARTBEAT_FRAME
    events = parse_sse_stream(text)
    assert [e["event"] for e in events] == ["tick"]


# ----------------------------------------------------------------------
# Determinism: chunking invariance (in-process)
# ----------------------------------------------------------------------
def _stream_session(chunks, params=PARAMS) -> tuple:
    session = SimulationSession(params)
    sub = session.stream.subscribe()
    session.submit(_wave("det", 12))
    for until in chunks:
        session.advance(until=until)
    session.advance()  # run to completion
    return session, _drain(sub)


def test_sse_bytes_identical_across_advance_chunkings():
    _, one_shot = _stream_session([])
    _, coarse = _stream_session([1800.0, 3600.0, 7200.0])
    _, fine = _stream_session([300.0 * i for i in range(1, 40)])
    assert one_shot == coarse == fine
    events = parse_sse_stream(one_shot)
    kinds = {e["event"] for e in events}
    assert {"submit", "pass", "tick"} <= kinds
    # sequence ids are gapless and monotonic from 1
    ids = [int(e["id"]) for e in events]
    assert ids == list(range(1, len(ids) + 1))
    # every data payload is canonical JSON (key-sorted, compact)
    for event in events:
        decoded = json.loads(event["data"])
        assert event["data"] == json.dumps(decoded, sort_keys=True, separators=(",", ":"))


def test_submit_and_inject_emit_operation_events():
    session = SimulationSession(PARAMS)
    sub = session.stream.subscribe()
    session.submit(_wave("ops", 4))
    session.advance(until=600.0)
    session.inject({"node_id": "a100-sim-0000", "kind": "NODE_FAIL"})
    events = parse_sse_stream(_drain(sub))
    submits = [e for e in events if e["event"] == "submit"]
    injects = [e for e in events if e["event"] == "inject"]
    assert json.loads(submits[0]["data"])["count"] == 4
    assert json.loads(injects[0]["data"])["node"] == "a100-sim-0000"


# ----------------------------------------------------------------------
# Zero observer effect
# ----------------------------------------------------------------------
def _driven_session(params, churn: bool = False) -> SimulationSession:
    session = SimulationSession(params)
    subs = []
    if churn:
        subs.append(session.stream.subscribe())
    session.submit(_wave("obs", 10))
    for i, until in enumerate((900.0, 1800.0, 2700.0, 3600.0)):
        session.advance(until=until)
        if churn:
            # subscribe/poll/close churn between every step, plus one
            # permanently slow subscriber that never polls
            sub = session.stream.subscribe()
            sub.poll()
            sub.close()
            subs.append(session.stream.subscribe())
    session.advance()
    if churn:
        for sub in subs[: len(subs) // 2]:
            sub.poll()
    return session


def test_subscriber_churn_has_no_observer_effect_on_metrics():
    quiet = _driven_session(PARAMS)
    noisy = _driven_session(PARAMS, churn=True)
    unstreamed = _driven_session({**PARAMS, "stream_backlog": 0})
    assert unstreamed.stream is None
    fp = lambda s: json.dumps(s.metrics(), sort_keys=True)
    assert fp(quiet) == fp(noisy) == fp(unstreamed)


def test_subscribers_do_not_change_snapshot_bytes():
    session = SimulationSession(PARAMS)
    session.submit(_wave("snap", 8))
    session.advance(until=1800.0)
    before = session.snapshot_bytes()
    subs = [session.stream.subscribe() for _ in range(4)]
    for sub in subs:
        sub.poll()
    assert session.snapshot_bytes() == before
    for sub in subs:
        sub.close()
    assert session.snapshot_bytes() == before


def test_restore_reattaches_stream_and_emits_restore_event():
    session = SimulationSession(PARAMS)
    session.submit(_wave("res", 8))
    session.advance(until=1800.0)
    blob = session.snapshot_bytes()
    session.advance(until=3600.0)
    sub = session.stream.subscribe()
    session.restore_bytes(blob)
    events = parse_sse_stream(_drain(sub))
    assert events[0]["event"] == "restore"
    # the restored recorder keeps feeding the stream
    session.advance(until=2700.0)
    later = parse_sse_stream(_drain(sub))
    assert any(e["event"] in ("pass", "tick") for e in later)


# ----------------------------------------------------------------------
# Satellite: bounded recorder memory in long-lived sessions
# ----------------------------------------------------------------------
def test_long_lived_session_memory_stays_bounded():
    session = SimulationSession({**PARAMS, "pass_record_limit": 64})
    recorder = session.recorder
    high_water = 0
    for wave in range(6):
        session.submit(_wave(f"mem{wave}", 8, start=wave * 1200.0))
        session.advance(until=(wave + 1) * 1200.0)
        high_water = max(
            high_water, len(recorder.pass_records), len(recorder.tick_samples)
        )
    assert high_water <= 64  # steady state, not linear growth
    assert recorder.dropped_pass_records + recorder.dropped_tick_samples > 0
    snap = recorder.snapshot()
    assert snap["dropped_pass_records"] == recorder.dropped_pass_records
    assert snap["dropped_tick_samples"] == recorder.dropped_tick_samples


def test_pass_record_limit_validation():
    with pytest.raises(SessionError):
        SimulationSession({**PARAMS, "pass_record_limit": -1})
    unbounded = SimulationSession({**PARAMS, "pass_record_limit": 0})
    assert unbounded.recorder.pass_record_limit is None


# ----------------------------------------------------------------------
# Server end-to-end (SSE over HTTP)
# ----------------------------------------------------------------------
async def _with_server(body):
    server = SchedulerServer()
    await server.start(port=0)
    try:
        return await body(server)
    finally:
        await server.stop()


async def _read_until_seq(sub, seq: int, timeout: float = 10.0) -> list:
    events = []
    while sub.last_event_id is None or sub.last_event_id < seq:
        event = await sub.read_event(timeout=timeout)
        assert event is not None, "stream closed early"
        events.append(event)
    return events


def test_http_stream_delivers_live_events():
    async def body(server):
        client = AsyncServiceClient(server.host, server.port)
        try:
            sid = (await client.create_session(**PARAMS))["session_id"]
            sub = await client.open_stream(sid)
            await client.submit(sid, _wave("live", 8))
            await client.advance(sid, until=3600.0)
            last_seq = (await client.stats(sid))["stream"]["last_seq"]
            assert last_seq > 0
            events = await _read_until_seq(sub, last_seq)
            kinds = {e["event"] for e in events}
            assert "submit" in kinds and ("pass" in kinds or "tick" in kinds)
            await sub.close()
            stream_stats = (await client.stats(sid))["stream"]
            assert stream_stats["total_subscribers"] >= 1
        finally:
            await client.close()

    asyncio.run(_with_server(body))


def test_http_disconnect_and_resume_is_byte_lossless():
    async def body(server):
        client = AsyncServiceClient(server.host, server.port)
        try:
            sid = (await client.create_session(**PARAMS))["session_id"]
            witness = await client.open_stream(sid)
            flaky = await client.open_stream(sid)
            await client.submit(sid, _wave("resume", 10))
            await client.advance(sid, until=1800.0)
            mid_seq = (await client.stats(sid))["stream"]["last_seq"]
            assert mid_seq > 0
            await _read_until_seq(flaky, mid_seq)
            await flaky.close()  # mid-stream disconnect

            await client.advance(sid)  # events keep flowing while away
            end_seq = (await client.stats(sid))["stream"]["last_seq"]
            assert end_seq > mid_seq

            resumed = await client.open_stream(sid, last_event_id=flaky.last_event_id)
            await _read_until_seq(resumed, end_seq)
            await _read_until_seq(witness, end_seq)
            await resumed.close()

            rejoined = _strip_heartbeats(bytes(flaky.raw + resumed.raw))
            uninterrupted = _strip_heartbeats(bytes(witness.raw))
            assert rejoined == uninterrupted
            await witness.close()
        finally:
            await client.close()

    asyncio.run(_with_server(body))


def test_http_stream_disabled_session_returns_409():
    async def body(server):
        client = AsyncServiceClient(server.host, server.port)
        try:
            sid = (await client.create_session(**PARAMS, stream_backlog=0))["session_id"]
            with pytest.raises(ServiceError) as err:
                await client.open_stream(sid)
            assert err.value.status == 409
            assert (await client.stats(sid))["stream"] is None
        finally:
            await client.close()

    asyncio.run(_with_server(body))


def test_http_pass_record_limit_knob():
    async def body(server):
        client = AsyncServiceClient(server.host, server.port)
        try:
            sid = (await client.create_session(**PARAMS, pass_record_limit=16))[
                "session_id"
            ]
            await client.submit(sid, _wave("knob", 10))
            await client.advance(sid)
            session = server._sessions[sid]
            assert len(session.recorder.pass_records) <= 16
            assert len(session.recorder.tick_samples) <= 16
        finally:
            await client.close()

    asyncio.run(_with_server(body))


def test_dashboard_serves_self_contained_html():
    async def body(server):
        reader, writer = await asyncio.open_connection(server.host, server.port)
        writer.write(
            b"GET /dashboard HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, body_bytes = raw.partition(b"\r\n\r\n")
        assert b"200" in head.split(b"\r\n")[0]
        assert b"text/html" in head
        html = body_bytes.decode("utf-8")
        assert "EventSource" in html  # live SSE wiring
        assert "/sessions" in html
        # self-contained: no external scripts/styles/fonts
        assert "http://" not in html and "https://" not in html
        assert "<script src" not in html and "link rel" not in html

    asyncio.run(_with_server(body))
