"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    GPUDevice,
    GPUModel,
    Node,
    TaskType,
    generate_checkpoints,
    percentile,
)
from repro.core.gde import decompose, moving_average, normal_quantile
from repro.core.gde.training import softmax, softplus
from repro.core.sqa import GPUInventoryEstimator, SQAConfig, SpotQuotaAllocator
from repro.core.gde import GPUDemandEstimator, SeasonalQuantileForecaster
from tests.conftest import build_task

finite_floats = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestAllocationProperties:
    @given(fractions=st.lists(st.floats(min_value=0.05, max_value=0.5), min_size=1, max_size=10))
    def test_device_never_over_allocated(self, fractions):
        device = GPUDevice(index=0, model=GPUModel.A100)
        for i, fraction in enumerate(fractions):
            if device.can_fit(fraction):
                device.allocate(f"t{i}", fraction)
        assert device.used_fraction <= 1.0 + 1e-9
        assert device.free_fraction >= -1e-9

    @given(
        sizes=st.lists(st.sampled_from([1.0, 2.0, 4.0, 8.0]), min_size=1, max_size=12),
    )
    def test_node_capacity_conserved_under_allocate_release(self, sizes):
        node = Node(node_id="n", gpu_model=GPUModel.A100, num_gpus=8)
        placed = []
        for i, size in enumerate(sizes):
            task = build_task(TaskType.HP if i % 2 else TaskType.SPOT, gpus_per_pod=size)
            if node.can_fit_pod(size):
                node.allocate_pod(task)
                placed.append(task)
            assert node.allocated_gpus <= node.total_gpus + 1e-9
            assert node.hp_gpus + node.spot_gpus <= node.allocated_gpus + 1e-9
        for task in placed:
            node.release_task(task.task_id)
        assert node.idle_gpus == 8
        assert node.free_capacity == 8.0


class TestCheckpointProperties:
    @given(
        duration=st.floats(min_value=60.0, max_value=1e5),
        interval=st.floats(min_value=30.0, max_value=1e5),
    )
    def test_checkpoints_monotone_and_end_at_duration(self, duration, interval):
        points = generate_checkpoints(duration, interval)
        assert all(b > a for a, b in zip(points, points[1:]))
        assert points[-1] == duration
        assert all(0 < p <= duration for p in points)


class TestStatisticsProperties:
    @given(values=st.lists(finite_floats, min_size=1, max_size=50))
    def test_percentile_within_range(self, values):
        for q in (0, 25, 50, 75, 99, 100):
            p = percentile(values, q)
            assert min(values) - 1e-9 <= p <= max(values) + 1e-9

    @given(values=st.lists(finite_floats, min_size=2, max_size=50))
    def test_percentile_monotone_in_q(self, values):
        assert percentile(values, 25) <= percentile(values, 75) + 1e-9


class TestDecompositionProperties:
    @given(
        data=st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=4, max_size=200),
        kernel=st.integers(min_value=1, max_value=30),
    )
    def test_trend_plus_cyclical_reconstructs_series(self, data, kernel):
        series = np.asarray(data)
        trend, cyclical = decompose(series, kernel)
        assert np.allclose(trend + cyclical, series, atol=1e-9)
        assert trend.shape == series.shape

    @given(
        value=st.floats(min_value=-50, max_value=50, allow_nan=False),
        length=st.integers(min_value=3, max_value=100),
        kernel=st.integers(min_value=1, max_value=40),
    )
    def test_moving_average_of_constant_is_constant(self, value, length, kernel):
        series = np.full(length, value)
        assert np.allclose(moving_average(series, kernel), value)


class TestNumericProperties:
    @given(x=st.floats(min_value=-50, max_value=50, allow_nan=False))
    def test_softplus_positive_and_above_relu(self, x):
        y = softplus(np.array([x]))[0]
        assert y > 0
        assert y >= max(0.0, x) - 1e-9

    @given(values=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=8))
    def test_softmax_is_distribution(self, values):
        weights = softmax(np.asarray(values))
        assert np.all(weights >= 0)
        assert np.isclose(weights.sum(), 1.0)

    @given(p=st.floats(min_value=0.01, max_value=0.99))
    def test_normal_quantile_monotone(self, p):
        assert normal_quantile(min(0.99, p + 0.005)) >= normal_quantile(p) - 1e-9


class TestQuotaProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        demand=st.floats(min_value=0.0, max_value=600.0),
        idle=st.floats(min_value=0.0, max_value=512.0),
        guaranteed=st.floats(min_value=0.0, max_value=256.0),
        eviction=st.floats(min_value=0.0, max_value=1.0),
        queue=st.floats(min_value=0.0, max_value=1e5),
    )
    def test_quota_bounded_by_capacity_and_availability(self, demand, idle, guaranteed, eviction, queue):
        estimator = GPUDemandEstimator(SeasonalQuantileForecaster()).fit(
            {"org": np.full(168, demand)}
        )
        sqa = SpotQuotaAllocator(
            GPUInventoryEstimator(estimator, capacity=512.0), SQAConfig()
        )
        quota = sqa.compute_quota(
            now=0.0, start_hour=168, idle_gpus=idle, guaranteed_spot_gpus=guaranteed,
            eviction_rate=eviction, max_queue_time=queue,
        )
        assert 0.0 <= quota <= max(idle + guaranteed, 0.0) + 1e-6
        assert SQAConfig().min_eta <= sqa.eta <= SQAConfig().max_eta
