"""Observability parity suite: instrumentation must not perturb runs.

The whole layer rests on one contract — attaching a live
:class:`~repro.obs.Recorder` observes a simulation without steering it.
This file pins that down as bit-identity of the final
:class:`SimulationMetrics` (NaN-aware, field by field) between an
instrumented and an uninstrumented run of the same seed, across:

* every scheduler family in the registry (baselines, PTS, GFS and a
  GFS ablation),
* a chaos scenario with cluster dynamics (evictions, kills, repairs),
* a snapshot taken mid-run from an *instrumented* simulator, restored
  and drained — the snapshot itself must not leak recorder state.

Everything runs under ``REPRO_VALIDATE_AGGREGATES=1`` so any divergence
trips the cluster's internal self-checks, not just the final compare.
"""

from __future__ import annotations

import pickle

import pytest

from tests.conftest import assert_metrics_identical
from tests.test_stepping_determinism import DURATION_HOURS, SCHEDULERS, build_sim
from repro.cluster.simulator import ClusterSimulator
from repro.obs import NULL_RECORDER, Recorder


@pytest.fixture(autouse=True)
def _validate_aggregates(monkeypatch):
    """Divergence should explode inside the run, not only at the end."""
    monkeypatch.setenv("REPRO_VALIDATE_AGGREGATES", "1")


def _run(scheduler_kind: str, scenario: str, recorder=None):
    sim = build_sim(scheduler_kind, scenario)
    if recorder is not None:
        sim.obs = recorder
    return sim.run()


# ----------------------------------------------------------------------
# Instrumented == uninstrumented, across the registry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler_kind", SCHEDULERS)
def test_instrumented_run_is_bit_identical(scheduler_kind):
    baseline = _run(scheduler_kind, "default")
    recorder = Recorder()
    observed = _run(scheduler_kind, "default", recorder)
    assert_metrics_identical(observed, baseline, f"obs-parity/{scheduler_kind}")
    # The recorder must actually have observed the run, or this test
    # proves nothing.
    assert recorder.counter_value("sim.passes") > 0
    assert sum(
        v for (name, _), v in recorder.counters.items() if name == "sim.events"
    ) > 0
    assert recorder.pass_records and recorder.tick_samples


@pytest.mark.parametrize("scheduler_kind", ["gfs", "chronus"])
def test_instrumented_chaos_run_is_bit_identical(scheduler_kind):
    """Dynamics events (failures, drains, evictions) under observation."""
    baseline = _run(scheduler_kind, "node_churn")
    recorder = Recorder()
    observed = _run(scheduler_kind, "node_churn", recorder)
    assert_metrics_identical(observed, baseline, f"obs-parity-chaos/{scheduler_kind}")
    assert recorder.counter_value("sim.events", {"kind": "NODE_FAIL"}) > 0


def test_pass_record_limit_does_not_perturb_the_run():
    baseline = _run("gfs", "default")
    observed = _run("gfs", "default", Recorder(pass_record_limit=4))
    assert_metrics_identical(observed, baseline, "obs-parity/pass-limit")


# ----------------------------------------------------------------------
# Snapshot/restore from an instrumented simulator
# ----------------------------------------------------------------------
def test_snapshot_from_instrumented_sim_restores_clean_and_identical():
    baseline = build_sim("gfs", "node_churn").run()

    sim = build_sim("gfs", "node_churn")
    sim.obs = Recorder()
    sim.advance(until=DURATION_HOURS * 1800.0)  # halfway
    blob = sim.snapshot()

    restored = ClusterSimulator.restore(blob)
    # The recorder is host-local: it must not ride inside snapshots.
    assert restored.obs is NULL_RECORDER
    restored.advance()
    assert_metrics_identical(restored.finalize(), baseline, "obs-snapshot-restore")


def test_snapshot_bytes_unaffected_by_attached_recorder():
    """An instrumented sim and a clean twin pickle to the same bytes."""
    clean = build_sim("gfs")
    clean.advance(until=3600.0)

    observed = build_sim("gfs")
    observed.obs = Recorder()
    observed.advance(until=3600.0)

    assert pickle.dumps(clean) == pickle.dumps(observed)


def test_restored_sim_accepts_reattached_recorder():
    """The service reattaches its session recorder after restore; the
    continuation must still match the uninterrupted run."""
    baseline = build_sim("gfs").run()

    sim = build_sim("gfs")
    sim.obs = Recorder()
    sim.advance(until=DURATION_HOURS * 1800.0)
    blob = sim.snapshot()

    restored = ClusterSimulator.restore(blob)
    reattached = Recorder()
    restored.obs = reattached
    restored.advance()
    assert_metrics_identical(restored.finalize(), baseline, "obs-reattach")
    assert reattached.counter_value("sim.passes") > 0
