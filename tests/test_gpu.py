"""Unit tests for GPU device allocation state."""

import pytest

from repro.cluster import GPUDevice, GPUModel
from repro.cluster.gpu import HOURLY_PRICE_USD


def make_device() -> GPUDevice:
    return GPUDevice(index=0, model=GPUModel.A100)


class TestGPUDevice:
    def test_new_device_is_idle(self):
        device = make_device()
        assert device.is_idle
        assert device.used_fraction == 0.0
        assert device.free_fraction == 1.0

    def test_whole_card_allocation(self):
        device = make_device()
        device.allocate("task-1", 1.0)
        assert not device.is_idle
        assert device.used_fraction == pytest.approx(1.0)
        assert device.free_fraction == pytest.approx(0.0)

    def test_fractional_allocation_accumulates(self):
        device = make_device()
        device.allocate("task-1", 0.25)
        device.allocate("task-2", 0.5)
        assert device.used_fraction == pytest.approx(0.75)
        assert device.free_fraction == pytest.approx(0.25)

    def test_whole_card_requires_idle_device(self):
        device = make_device()
        device.allocate("task-1", 0.25)
        assert not device.can_fit(1.0)
        with pytest.raises(ValueError):
            device.allocate("task-2", 1.0)

    def test_fractional_overflow_rejected(self):
        device = make_device()
        device.allocate("task-1", 0.7)
        assert not device.can_fit(0.5)
        with pytest.raises(ValueError):
            device.allocate("task-2", 0.5)

    def test_release_returns_freed_fraction(self):
        device = make_device()
        device.allocate("task-1", 0.5)
        freed = device.release("task-1")
        assert freed == pytest.approx(0.5)
        assert device.is_idle

    def test_release_unknown_task_is_noop(self):
        device = make_device()
        assert device.release("ghost") == 0.0
        assert device.is_idle

    def test_same_task_can_hold_multiple_fractions(self):
        device = make_device()
        device.allocate("task-1", 0.2)
        device.allocate("task-1", 0.3)
        assert device.allocations["task-1"] == pytest.approx(0.5)
        device.release("task-1")
        assert device.free_fraction == pytest.approx(1.0)

    def test_used_fraction_resets_exactly_after_release(self):
        device = make_device()
        for i in range(10):
            device.allocate(f"t{i}", 0.1)
        for i in range(10):
            device.release(f"t{i}")
        assert device.used_fraction == 0.0
        assert device.is_idle


def test_all_models_have_prices():
    for model in GPUModel:
        assert HOURLY_PRICE_USD[model] > 0
