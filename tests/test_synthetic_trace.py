"""Tests for synthetic trace generation and trace (de)serialisation."""

import numpy as np
import pytest

from repro.cluster import GPUModel
from repro.workloads import (
    HP_GANG_FRACTION,
    SPOT_GANG_FRACTION,
    SyntheticTraceGenerator,
    Trace,
    WorkloadConfig,
    generate_legacy_2020_requests,
    generate_modern_2024_requests,
    generate_trace,
)


@pytest.fixture(scope="module")
def calibration_trace():
    """A larger trace used to verify distributional calibration."""
    config = WorkloadConfig(cluster_gpus=2048.0, duration_hours=24.0, seed=9)
    return SyntheticTraceGenerator(config).generate()


class TestTraceGeneration:
    def test_tasks_sorted_and_within_window(self, calibration_trace):
        tasks = calibration_trace.sorted_tasks()
        times = [t.submit_time for t in tasks]
        assert times == sorted(times)
        assert max(times) <= 24.0 * 3600.0

    def test_both_classes_present(self, calibration_trace):
        assert len(calibration_trace.hp_tasks) > 100
        assert len(calibration_trace.spot_tasks) > 20

    def test_gpu_size_mix_close_to_table3(self, calibration_trace):
        stats = calibration_trace.statistics()
        # One-GPU requests dominate and full-node requests are substantial.
        assert stats.hp_gpu_histogram.get("1", 0.0) == pytest.approx(0.55, abs=0.10)
        assert stats.hp_gpu_histogram.get("8", 0.0) == pytest.approx(0.24, abs=0.10)
        assert stats.spot_gpu_histogram.get("1", 0.0) == pytest.approx(0.67, abs=0.10)

    def test_gang_fractions_close_to_table3(self, calibration_trace):
        stats = calibration_trace.statistics()
        assert stats.hp_gang_fraction == pytest.approx(HP_GANG_FRACTION, abs=0.05)
        assert stats.spot_gang_fraction == pytest.approx(SPOT_GANG_FRACTION, abs=0.08)

    def test_durations_clipped(self, calibration_trace):
        config = WorkloadConfig()
        for task in calibration_trace.tasks:
            assert config.min_runtime <= task.duration <= config.max_runtime

    def test_spot_scale_increases_spot_tasks(self):
        low = generate_trace(512.0, duration_hours=12.0, spot_scale=1.0, seed=2)
        high = generate_trace(512.0, duration_hours=12.0, spot_scale=4.0, seed=2)
        assert len(high.spot_tasks) > 2 * len(low.spot_tasks)
        # HP stream is unchanged by the spot scaling (same seed).
        assert len(high.hp_tasks) == pytest.approx(len(low.hp_tasks), rel=0.2)

    def test_org_history_aligned_with_hp_demand(self, calibration_trace):
        total_history_mean = sum(float(np.mean(v)) for v in calibration_trace.org_history.values())
        horizon = calibration_trace.metadata["duration_hours"] * 3600.0
        hp_work = sum(t.total_gpus * t.duration for t in calibration_trace.hp_tasks)
        fluid_mean = hp_work / horizon
        assert total_history_mean == pytest.approx(fluid_mean, rel=0.35)

    def test_history_is_multiple_of_full_days(self, calibration_trace):
        for series in calibration_trace.org_history.values():
            assert len(series) % 24 == 0

    def test_metadata_recorded(self, calibration_trace):
        meta = calibration_trace.metadata
        assert meta["cluster_gpus"] == 2048.0
        assert meta["num_hp"] == len(calibration_trace.hp_tasks)

    def test_determinism_per_seed(self):
        a = generate_trace(256.0, duration_hours=6.0, seed=5)
        b = generate_trace(256.0, duration_hours=6.0, seed=5)
        assert len(a) == len(b)
        assert [t.submit_time for t in a.tasks[:20]] == [t.submit_time for t in b.tasks[:20]]


class TestFigure2Samples:
    def test_legacy_requests_mostly_partial(self):
        samples = generate_legacy_2020_requests(2000, seed=1)
        assert np.mean(np.array(samples) < 1.0) > 0.6

    def test_modern_requests_mostly_whole_and_full_node(self):
        samples = np.array(generate_modern_2024_requests(2000, seed=1))
        assert np.mean(samples >= 1.0) > 0.95
        assert np.mean(samples >= 8.0) == pytest.approx(0.7, abs=0.05)


class TestTraceSerialisation:
    def test_round_trip_preserves_tasks_and_history(self, tmp_path, tiny_trace):
        path = tmp_path / "trace.json"
        tiny_trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(tiny_trace)
        assert loaded.metadata["seed"] == tiny_trace.metadata["seed"]
        original = tiny_trace.sorted_tasks()[0]
        restored = loaded.sorted_tasks()[0]
        assert restored.task_id == original.task_id
        assert restored.task_type is original.task_type
        assert restored.gpu_model is GPUModel.A100
        assert np.allclose(loaded.org_history["org-A"], tiny_trace.org_history["org-A"])

    def test_statistics_of_empty_trace(self):
        stats = Trace().statistics()
        assert stats.num_hp == 0
        assert stats.num_spot == 0

    def test_horizon_of_empty_trace_is_zero(self):
        assert Trace().horizon == 0.0
