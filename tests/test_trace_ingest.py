"""Tests for the trace ingestion & replay subsystem.

Golden-file adapter tests on the small fixture traces under
``tests/fixtures/``, transform-pipeline determinism, demand-history
reconstruction, ``trace:<path>`` scenario integration with the parallel
experiment engine (worker-count parity, content-keyed caching) and the
``trace`` CLI group.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.cluster import GPUModel, TaskType
from repro.experiments import (
    ArtifactCache,
    ExperimentEngine,
    ExperimentScale,
    SchedulerSpec,
    WorkloadSpec,
    metrics_to_payload,
    sweep_jobs,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.engine import cache_payload
from repro.workloads import Trace, get_scenario
from repro.workloads.ingest import (
    ArrivalScale,
    Downsample,
    DurationClamp,
    OrgConsolidate,
    TimeWindow,
    TraceRecord,
    TraceScenario,
    detect_format,
    file_sha256,
    get_adapter,
    ingest_trace,
    make_pipeline,
    rebase_and_sort,
    reconstruct_org_history,
    remap_gpu_model,
    validate_records,
    validate_trace,
)

FIXTURES = Path(__file__).parent / "fixtures"
PHILLY = FIXTURES / "philly_small.csv"
PAI = FIXTURES / "pai_small.csv"
GENERIC_JSONL = FIXTURES / "generic_small.jsonl"
GENERIC_CSV = FIXTURES / "generic_small.csv"


# ----------------------------------------------------------------------
# Format detection
# ----------------------------------------------------------------------
class TestDetectFormat:
    def test_fixture_formats(self):
        assert detect_format(PHILLY) == "philly"
        assert detect_format(PAI) == "pai"
        assert detect_format(GENERIC_JSONL) == "jsonl"
        assert detect_format(GENERIC_CSV) == "csv"

    def test_unknown_format_name_raises(self):
        with pytest.raises(KeyError, match="unknown trace format"):
            get_adapter("sgee")


# ----------------------------------------------------------------------
# Golden-file adapter tests
# ----------------------------------------------------------------------
class TestPhillyAdapter:
    def test_golden_conversion(self):
        adapter = get_adapter("philly")
        records = rebase_and_sort(adapter.read_records(PHILLY))
        # 12 rows, 2 Failed rows skipped.
        assert len(records) == 10
        assert adapter.skipped == 2
        assert adapter.skip_reasons == {"status:failed": 2}
        by_id = {r.job_id: r for r in records}
        # Pass -> hp, Killed -> spot.
        assert by_id["job-001"].task_type == "hp"
        assert by_id["job-004"].task_type == "spot"
        assert sum(1 for r in records if r.task_type == "hp") == 7
        # Times rebased to the earliest submission (05:00:00).
        assert records[0].submit_time == 0.0
        assert by_id["job-012"].submit_time == 5 * 3600.0
        # Durations from started/finished timestamps.
        assert by_id["job-001"].duration == 7200.0
        assert by_id["job-004"].duration == 1800.0

    def test_wide_jobs_split_into_node_sized_gangs(self):
        records = {r.job_id: r for r in get_adapter("philly").iter_records(PHILLY)}
        assert (records["job-003"].num_pods, records["job-003"].gpus_per_pod) == (2, 8.0)
        assert records["job-003"].is_gang
        # 12 GPUs -> 2 pods of 6 (even split under the 8-GPU node cap).
        assert (records["job-009"].num_pods, records["job-009"].gpus_per_pod) == (2, 6.0)
        assert not records["job-001"].is_gang

    def test_vc_becomes_org(self):
        orgs = {r.org for r in get_adapter("philly").iter_records(PHILLY)}
        assert orgs == {"vc-ads", "vc-ml", "vc-speech"}


class TestPAIAdapter:
    def test_golden_conversion(self):
        adapter = get_adapter("pai")
        records = rebase_and_sort(adapter.read_records(PAI))
        # 8 rows: Failed and Running are skipped.
        assert len(records) == 6
        assert adapter.skipped == 2
        by_id = {r.job_id: r for r in records}
        assert by_id["pai-a"].task_type == "hp"
        assert by_id["pai-c"].task_type == "spot"       # Cancelled -> spot
        assert by_id["pai-a"].duration == 7200.0
        # plan_gpu percent -> GPUs per pod; inst_num -> pods.
        assert by_id["pai-c"].gpus_per_pod == 0.5
        assert (by_id["pai-b"].num_pods, by_id["pai-b"].gpus_per_pod) == (2, 2.0)
        assert by_id["pai-b"].is_gang
        assert by_id["pai-g"].gpus_per_pod == 8.0
        # Numeric times rebased to the earliest start (1000s).
        assert by_id["pai-a"].submit_time == 0.0
        assert by_id["pai-h"].submit_time == 5000.0

    def test_gpu_type_and_group_carried(self):
        by_id = {r.job_id: r for r in get_adapter("pai").iter_records(PAI)}
        assert by_id["pai-a"].gpu_model == "V100"
        assert by_id["pai-d"].gpu_model == "MISC"
        assert by_id["pai-a"].org == "grp-nlp"


class TestGenericAdapters:
    def test_jsonl_golden(self):
        records = rebase_and_sort(get_adapter("jsonl").read_records(GENERIC_JSONL))
        assert len(records) == 8
        by_id = {r.job_id: r for r in records}
        assert by_id["g-002"].task_type == "spot"
        assert by_id["g-002"].checkpoint_interval == 900.0
        assert by_id["g-002"].is_gang
        assert by_id["g-003"].gpus_per_pod == 0.5
        assert by_id["g-003"].num_pods == 1            # defaulted
        assert by_id["g-001"].gpu_model == "A100"

    def test_csv_matches_jsonl_semantics(self):
        csv_records = rebase_and_sort(get_adapter("csv").read_records(GENERIC_CSV))
        assert len(csv_records) == 6
        by_id = {r.job_id: r for r in csv_records}
        assert by_id["c-002"].is_gang
        assert by_id["c-003"].gpu_model is None        # empty cell -> default
        assert by_id["c-005"].gang is None and not by_id["c-005"].is_gang

    def test_missing_required_field_is_skipped_and_counted(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"job_id": "x", "duration": 100}\n{"submit_time": 0, "duration": 5}\n')
        adapter = get_adapter("jsonl")
        records = adapter.read_records(bad)
        assert len(records) == 1
        assert adapter.skipped == 1


# ----------------------------------------------------------------------
# Transforms
# ----------------------------------------------------------------------
def _records():
    return rebase_and_sort(get_adapter("jsonl").read_records(GENERIC_JSONL))


class TestTransforms:
    def test_time_window_slices_and_rebases(self):
        out = TimeWindow(start_hours=1.0, end_hours=2.0).apply(_records())
        assert {r.job_id for r in out} == {"g-004", "g-005", "g-006"}
        assert min(r.submit_time for r in out) == 0.0
        assert max(r.submit_time for r in out) == 1800.0

    def test_arrival_scale_compresses_time(self):
        out = ArrivalScale(factor=2.0).apply(_records())
        assert out[-1].submit_time == 4500.0           # 9000s / 2
        assert out[-1].duration == 5400.0              # durations untouched

    def test_duration_clamp(self):
        out = DurationClamp(min_seconds=2000.0, max_seconds=7200.0).apply(_records())
        durations = [r.duration for r in out]
        assert min(durations) == 2000.0 and max(durations) == 7200.0

    def test_org_consolidate_folds_tail_by_gpu_time(self):
        out = OrgConsolidate(top_k=1).apply(_records())
        # org-C has the largest GPU-time (g-008: 16 GPUs x 5400s).
        assert {r.org for r in out} == {"org-C", "other"}

    def test_downsample_is_seed_deterministic(self):
        a = Downsample(fraction=0.5, seed=3).apply(_records())
        b = Downsample(fraction=0.5, seed=3).apply(_records())
        c = Downsample(fraction=0.5, seed=4).apply(_records())
        assert [r.job_id for r in a] == [r.job_id for r in b]
        assert 0 < len(a) < 8
        assert [r.job_id for r in a] != [r.job_id for r in c]

    def test_pipeline_applies_in_order_and_describes(self):
        pipeline = make_pipeline([TimeWindow(0.0, 2.0), DurationClamp(max_seconds=3600.0)])
        out = pipeline.apply(_records())
        assert max(r.duration for r in out) == 3600.0
        description = pipeline.describe()
        assert [op["op"] for op in description["ops"]] == ["TimeWindow", "DurationClamp"]

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            ArrivalScale(factor=0.0)
        with pytest.raises(ValueError):
            Downsample(fraction=1.5)
        with pytest.raises(ValueError):
            OrgConsolidate(top_k=0)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_fixture_records_are_valid(self):
        report = validate_records(_records())
        assert report.ok and report.checked == 8

    def test_structural_errors_reported(self):
        report = validate_records(
            [
                TraceRecord(submit_time=-1.0, duration=0.0, num_pods=0, task_type="batch"),
            ]
        )
        assert not report.ok
        assert report.error_count == 4
        with pytest.raises(ValueError, match="failed validation"):
            report.raise_if_invalid()

    def test_empty_trace_is_an_error(self):
        assert not validate_records([]).ok

    def test_converted_trace_validation(self):
        trace = ingest_trace(GENERIC_JSONL)
        report = validate_trace(trace)
        assert report.ok

    def test_duplicate_task_ids_flagged(self, tiny_trace):
        trace = Trace(tasks=[tiny_trace.tasks[0], tiny_trace.tasks[0]])
        report = validate_trace(trace)
        assert any("duplicate task id" in e for e in report.errors)


# ----------------------------------------------------------------------
# GPU remapping and history reconstruction
# ----------------------------------------------------------------------
class TestRemap:
    def test_known_models_pass_through(self):
        assert remap_gpu_model("A100") is GPUModel.A100
        assert remap_gpu_model("h800") is GPUModel.H800

    def test_default_map_translates_foreign_models(self):
        assert remap_gpu_model("V100") is GPUModel.A100
        assert remap_gpu_model("T4") is GPUModel.A10
        assert remap_gpu_model("MISC") is None
        assert remap_gpu_model("TPUv4") is None

    def test_fleet_constraint_wins(self):
        fleet = [GPUModel.H800]
        assert remap_gpu_model("V100", fleet_models=fleet) is GPUModel.H800
        assert remap_gpu_model("H800", fleet_models=fleet) is GPUModel.H800

    def test_extra_map_overrides_default(self):
        assert remap_gpu_model("V100", extra_map={"V100": "H800"}) is GPUModel.H800
        assert remap_gpu_model("V100", extra_map={"V100": None}) is None


class TestHistoryReconstruction:
    def test_history_shape_and_determinism(self):
        trace = ingest_trace(GENERIC_JSONL, history_hours=7 * 24, history_seed=5)
        assert set(trace.org_history) == {"org-A", "org-B", "org-C"}
        for series in trace.org_history.values():
            assert len(series) == 7 * 24
            assert np.all(series >= 0)
        again = ingest_trace(GENERIC_JSONL, history_hours=7 * 24, history_seed=5)
        for org in trace.org_history:
            assert np.array_equal(trace.org_history[org], again.org_history[org])

    def test_history_tracks_hp_demand_only(self):
        tasks = ingest_trace(GENERIC_JSONL).tasks
        history = reconstruct_org_history(tasks, history_hours=24)
        # org-A's fluid HP usage dominates org-B's (8 GPU-hours + more).
        assert history["org-A"].mean() > history["org-B"].mean()

    def test_capacity_clip(self):
        tasks = ingest_trace(GENERIC_JSONL).tasks
        clipped = reconstruct_org_history(tasks, history_hours=24, cluster_gpus=1.0)
        total = np.sum(np.stack(list(clipped.values())), axis=0)
        assert np.all(total <= 1.0 + 0.25)  # noise can push slightly past


# ----------------------------------------------------------------------
# ingest_trace end-to-end
# ----------------------------------------------------------------------
class TestIngestTrace:
    def test_philly_end_to_end(self):
        trace = ingest_trace(PHILLY, fleet_models=[GPUModel.A100])
        assert len(trace) == 10
        assert trace.metadata["source_format"] == "philly"
        assert trace.metadata["num_hp"] == 7 and trace.metadata["num_spot"] == 3
        assert trace.metadata["source_sha256"] == file_sha256(PHILLY)
        assert all(t.gpu_model is None or t.gpu_model is GPUModel.A100 for t in trace.tasks)

    def test_pai_remaps_onto_fleet(self):
        trace = ingest_trace(PAI, fleet_models=[GPUModel.A100])
        by_id = {t.task_id: t for t in trace.tasks}
        assert by_id["pai-a"].gpu_model is GPUModel.A100    # V100 -> A100
        assert by_id["pai-b"].gpu_model is GPUModel.A100    # P100 -> A800 -> fleet
        assert by_id["pai-d"].gpu_model is None             # MISC -> agnostic

    def test_transforms_recorded_in_metadata(self):
        trace = ingest_trace(GENERIC_JSONL, transforms=[TimeWindow(0.0, 2.0)])
        assert trace.metadata["transforms"][0]["op"] == "TimeWindow"
        assert len(trace) == 6

    def test_duplicate_job_ids_deduplicated(self, tmp_path):
        src = tmp_path / "dupes.jsonl"
        src.write_text(
            '{"job_id": "j", "task_type": "hp", "submit_time": 0, "duration": 60}\n'
            '{"job_id": "j", "task_type": "hp", "submit_time": 10, "duration": 60}\n'
        )
        trace = ingest_trace(src)
        assert sorted(t.task_id for t in trace.tasks) == ["j", "j#1"]

    def test_invalid_source_raises_by_default(self, tmp_path):
        src = tmp_path / "invalid.csv"
        src.write_text("job_id,task_type,submit_time,duration\nx,batch,0,100\n")
        with pytest.raises(ValueError, match="failed validation"):
            ingest_trace(src)
        assert len(ingest_trace(src, validate=False)) == 1

    def test_round_trip_of_converted_trace(self, tmp_path):
        trace = ingest_trace(PHILLY)
        path = tmp_path / "philly.json.gz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.to_records() == trace.to_records()


class TestLoadTraceFile:
    def test_memoised_loads_return_independent_tasks(self, tmp_path):
        from repro.workloads.ingest import load_trace_file

        path = tmp_path / "t.json"
        ingest_trace(GENERIC_JSONL).save(path)
        first = load_trace_file(path)
        second = load_trace_file(path)
        # The record parse is memoised, but simulation-mutable Task
        # objects must be fresh per call.
        assert first.tasks[0] is not second.tasks[0]
        first.tasks[0].gpu_model = GPUModel.H800
        assert second.tasks[0].gpu_model is not GPUModel.H800
        assert first.to_records()["tasks"][0] != second.to_records()["tasks"][0]

    def test_memo_invalidated_when_file_rewritten(self, tmp_path):
        from repro.workloads.ingest import load_trace_file

        path = tmp_path / "t.json"
        trace = ingest_trace(GENERIC_JSONL)
        trace.save(path)
        assert len(load_trace_file(path)) == len(trace)
        Trace(tasks=trace.tasks[:3], org_history=trace.org_history,
              metadata=trace.metadata).save(path)
        assert len(load_trace_file(path)) == 3


# ----------------------------------------------------------------------
# Scenario + engine integration
# ----------------------------------------------------------------------
TINY = ExperimentScale(name="tiny", num_nodes=4, duration_hours=6.0, seed=3)


@pytest.fixture(scope="module")
def converted_traces(tmp_path_factory):
    """The Philly fixture and the generic JSONL fixture, converted."""
    root = tmp_path_factory.mktemp("converted")
    paths = {}
    for name, src in (("philly", PHILLY), ("generic", GENERIC_JSONL)):
        trace = ingest_trace(src, fleet_models=[GPUModel.A100])
        paths[name] = root / f"{name}.json.gz"
        trace.save(paths[name])
    return paths


def _trace_jobs(path, schedulers=("yarn-cs",)):
    specs = [SchedulerSpec(kind=kind) for kind in schedulers]
    workloads = [WorkloadSpec(scenario=f"trace:{path}", label="replay")]
    return sweep_jobs(TINY, specs, workloads, prefix="trace-test")


class TestTraceScenario:
    def test_get_scenario_resolves_trace_refs(self, converted_traces):
        scenario = get_scenario(f"trace:{converted_traces['philly']}")
        assert isinstance(scenario, TraceScenario)
        trace = scenario.build_trace(cluster_gpus=32.0, duration_hours=6.0)
        assert len(trace) == 10
        assert trace.metadata["scenario"].startswith("trace:")

    def test_missing_trace_file_fails_fast(self):
        with pytest.raises(FileNotFoundError):
            get_scenario("trace:/nonexistent/trace.json")

    def test_duration_clips_replay_window(self, converted_traces):
        scenario = get_scenario(f"trace:{converted_traces['philly']}")
        clipped = scenario.build_trace(cluster_gpus=32.0, duration_hours=3.0)
        assert len(clipped) < 10
        assert clipped.metadata["replay_clipped_tasks"] == 10 - len(clipped)
        assert all(t.submit_time < 3.0 * 3600.0 for t in clipped.tasks)

    def test_replay_remaps_models_onto_scale_fleet(self, converted_traces):
        scenario = get_scenario(f"trace:{converted_traces['generic']}")
        trace = scenario.build_trace(cluster_gpus=32.0, duration_hours=6.0,
                                     gpu_model=GPUModel.H800)
        models = {t.gpu_model for t in trace.tasks}
        assert models <= {None, GPUModel.H800}

    def test_raw_trace_files_replay_directly(self):
        scenario = get_scenario(f"trace:{PHILLY}")
        trace = scenario.build_trace(cluster_gpus=32.0, duration_hours=6.0)
        assert len(trace) == 10

    def test_worker_count_parity_bit_identical(self, converted_traces):
        """Acceptance: identical metrics at --workers 1 and --workers 4."""
        for name in ("philly", "generic"):
            jobs = _trace_jobs(converted_traces[name], schedulers=("yarn-cs", "fgd"))
            serial = ExperimentEngine(workers=1).run(jobs)
            pooled = ExperimentEngine(workers=4).run(jobs)
            for key in serial:
                assert metrics_to_payload(serial[key]) == metrics_to_payload(pooled[key]), (
                    f"{name}/{key} diverged across worker counts"
                )

    def test_cache_hits_keyed_on_trace_content(self, converted_traces, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        jobs = _trace_jobs(converted_traces["philly"])
        first = ExperimentEngine(workers=1, cache=cache)
        first.run(jobs)
        assert first.stats.executed == 1
        second = ExperimentEngine(workers=1, cache=cache)
        second.run(jobs)
        assert second.stats.cache_hits == 1 and second.stats.executed == 0

    def test_editing_trace_content_invalidates_cache_key(self, tmp_path):
        path = tmp_path / "trace.json"
        trace = ingest_trace(GENERIC_JSONL)
        trace.save(path)
        key_before = cache_payload(_trace_jobs(path)[0])
        # Re-save with one task dropped: same path, different bytes.
        Trace(tasks=trace.tasks[:-1], org_history=trace.org_history,
              metadata=trace.metadata).save(path)
        job = _trace_jobs(path)[0]
        assert cache_payload(job) != key_before

    def test_moving_trace_file_preserves_cache_key(self, converted_traces, tmp_path):
        import shutil

        original = converted_traces["philly"]
        copy = tmp_path / "renamed.json.gz"
        shutil.copyfile(original, copy)
        payload_a = cache_payload(_trace_jobs(original)[0])
        payload_b = cache_payload(_trace_jobs(copy)[0])
        assert payload_a == payload_b


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestTraceCLI:
    def test_convert_validate_stats_round_trip(self, tmp_path, capsys):
        out = tmp_path / "philly.json.gz"
        assert cli_main(["trace", "convert", str(PHILLY), str(out),
                         "--fleet-model", "A100"]) == 0
        assert out.exists()
        assert cli_main(["trace", "validate", str(out)]) == 0
        assert cli_main(["trace", "stats", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "10 task(s)" in printed
        assert "source_sha256" in printed

    def test_convert_applies_transforms(self, tmp_path):
        out = tmp_path / "windowed.json"
        assert cli_main(["trace", "convert", str(GENERIC_JSONL), str(out),
                         "--window", "0:2", "--max-duration", "3600",
                         "--top-orgs", "1", "--sample", "0.9"]) == 0
        trace = Trace.load(out)
        assert len(trace) <= 6
        assert max(t.duration for t in trace.tasks) <= 3600.0

    def test_convert_rejects_unroutable_output_suffix(self, tmp_path):
        with pytest.raises(SystemExit, match="json"):
            cli_main(["trace", "convert", str(PHILLY), str(tmp_path / "out.gz")])
        with pytest.raises(SystemExit, match="json"):
            cli_main(["trace", "convert", str(PHILLY), str(tmp_path / "out.trace")])

    def test_convert_rejects_unknown_map_destination(self, tmp_path):
        with pytest.raises(SystemExit, match="A1000"):
            cli_main(["trace", "convert", str(PHILLY), str(tmp_path / "o.json"),
                      "--map", "V100=A1000"])
        # 'none' and real models stay accepted.
        assert cli_main(["trace", "convert", str(PHILLY), str(tmp_path / "o.json"),
                         "--map", "V100=none", "--map", "P100=H800"]) == 0

    def test_validate_raw_trace_and_failure_exit_code(self, tmp_path):
        assert cli_main(["trace", "validate", str(PHILLY)]) == 0
        bad = tmp_path / "bad.csv"
        bad.write_text("job_id,task_type,submit_time,duration\nx,hp,0,-5\n")
        assert cli_main(["trace", "validate", str(bad)]) == 1

    def test_sweep_accepts_trace_scenario(self, converted_traces, capsys):
        code = cli_main([
            "sweep", "--scenario", f"trace:{converted_traces['philly']}",
            "--schedulers", "YARN-CS", "--workers", "1",
        ])
        assert code == 0
        assert "trace:" in capsys.readouterr().out
