"""Tests for the experiments CLI and miscellaneous package plumbing."""

import pytest

import repro
from repro.experiments import cli
from repro.experiments.config import ExperimentScale


class TestPackage:
    def test_version_and_top_level_exports(self):
        assert repro.__version__
        assert hasattr(repro, "GFSScheduler")
        assert hasattr(repro, "run_simulation")
        assert hasattr(repro, "generate_trace")

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.core.gde
        import repro.core.pts
        import repro.core.sqa
        import repro.experiments
        import repro.optim
        import repro.schedulers
        import repro.workloads


class TestCLI:
    def test_experiment_registry_covers_all_artifacts(self):
        expected = {"table5", "table6", "table7", "table8", "table9", "table10", "fig9", "fig10", "observations"}
        assert expected <= set(cli.EXPERIMENTS)

    def test_invalid_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["tableX"])

    def test_cli_runs_small_ablation(self, capsys, monkeypatch):
        # Patch the table-9 runner to a fast stub so the CLI path is exercised
        # without a full simulation.
        monkeypatch.setitem(cli.EXPERIMENTS, "table9", lambda scale: "stub-report")
        assert cli.main(["table9", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "table9" in out and "stub-report" in out

    def test_scale_argument_parsed(self, monkeypatch, capsys):
        captured = {}

        def fake(scale: ExperimentScale) -> str:
            captured["scale"] = scale.name
            return "ok"

        monkeypatch.setitem(cli.EXPERIMENTS, "table5", fake)
        cli.main(["table5", "--scale", "medium"])
        assert captured["scale"] == "medium"
