"""Tests for the experiments CLI and miscellaneous package plumbing."""

import pytest

import repro
from repro.experiments import cli
from repro.experiments.config import ExperimentScale


class TestPackage:
    def test_version_and_top_level_exports(self):
        assert repro.__version__
        assert hasattr(repro, "GFSScheduler")
        assert hasattr(repro, "run_simulation")
        assert hasattr(repro, "generate_trace")

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.core.gde
        import repro.core.pts
        import repro.core.sqa
        import repro.experiments
        import repro.optim
        import repro.schedulers
        import repro.workloads


class TestCLI:
    def test_experiment_registry_covers_all_artifacts(self):
        expected = {"table5", "table6", "table7", "table8", "table9", "table10", "fig9", "fig10", "observations"}
        assert expected <= set(cli.EXPERIMENTS)

    def test_invalid_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["tableX"])

    def test_cli_runs_small_ablation(self, capsys, monkeypatch):
        # Patch the table-9 runner to a fast stub so the CLI path is exercised
        # without a full simulation.
        monkeypatch.setitem(cli.EXPERIMENTS, "table9", lambda scale: "stub-report")
        assert cli.main(["table9", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "table9" in out and "stub-report" in out

    def test_scale_argument_parsed(self, monkeypatch, capsys):
        captured = {}

        def fake(scale: ExperimentScale) -> str:
            captured["scale"] = scale.name
            return "ok"

        monkeypatch.setitem(cli.EXPERIMENTS, "table5", fake)
        cli.main(["table5", "--scale", "medium"])
        assert captured["scale"] == "medium"

    def test_nodes_hours_override_scale(self, monkeypatch, capsys):
        captured = {}

        def fake(scale: ExperimentScale) -> str:
            captured["nodes"] = scale.num_nodes
            captured["hours"] = scale.duration_hours
            return "ok"

        monkeypatch.setitem(cli.EXPERIMENTS, "table5", fake)
        cli.main(["table5", "--nodes", "8", "--hours", "6"])
        assert captured == {"nodes": 8, "hours": 6.0}

    def test_scenarios_listing(self, capsys):
        assert cli.main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("default", "burst", "diurnal", "hetero", "org_skew",
                     "spot_heavy", "large_gang"):
            assert name in out

    def test_sweep_runs_scenario_with_workers(self, capsys, tmp_path):
        # Real end-to-end sweep at a tiny scale: one scheduler, one scenario,
        # two worker processes, with artifact export.
        assert cli.main([
            "sweep", "--scenario", "burst", "--nodes", "8", "--hours", "6",
            "--workers", "2", "--schedulers", "YARN-CS",
            "--out", str(tmp_path / "artifacts"),
        ]) == 0
        out = capsys.readouterr().out
        assert "Scenario: burst" in out and "YARN-CS" in out
        assert (tmp_path / "artifacts" / "grid.json").exists()
        assert (tmp_path / "artifacts" / "grid.csv").exists()
        assert (tmp_path / "artifacts" / "sweep.txt").exists()

    def test_sweep_unknown_scheduler_filter_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["sweep", "--nodes", "8", "--hours", "6",
                      "--schedulers", "NotAScheduler"])

    def test_cli_cache_dir_makes_second_run_incremental(self, capsys, tmp_path):
        argv = ["table9", "--nodes", "8", "--hours", "6",
                "--cache-dir", str(tmp_path / "cache")]
        assert cli.main(argv) == 0
        first = capsys.readouterr().out
        assert "2 simulated, 0 from cache" in first
        assert cli.main(argv) == 0
        second = capsys.readouterr().out
        assert "0 simulated, 2 from cache" in second
