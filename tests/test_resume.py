"""Crash-safe resumable sweeps: interrupt mid-sweep, resume bit-identically.

The contract under test (``docs/fault_tolerance.md``):

* a SIGINT mid-sweep drains in-flight cells, journals them, flushes a
  valid journal and surfaces ``KeyboardInterrupt`` — no zombie workers;
* ``kill -9`` (no handler can see it) loses at most the in-flight cells;
* resuming with the same journal replays completed cells (``journal_hits``)
  and re-runs only the rest, and the final grid is **bit-identical** to an
  uninterrupted reference run — at workers 1, 2 and 4;
* journal-replayed, cache-hit and freshly-executed cells are
  indistinguishable in the results.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import (
    ArtifactCache,
    ExperimentEngine,
    ExperimentScale,
    SchedulerSpec,
    WorkloadSpec,
    metrics_to_payload,
    sweep_jobs,
)
from repro.runtime import SweepJournal

TINY = ExperimentScale(name="tiny", num_nodes=8, duration_hours=6.0, seed=13)


def small_grid():
    """A 2x2 grid, ~15ms per cell: fast enough to sweep many times."""
    specs = [SchedulerSpec(kind="yarn-cs"), SchedulerSpec(kind="fgd")]
    workloads = [
        WorkloadSpec(spot_scale=2.0, label="medium"),
        WorkloadSpec(scenario="burst", spot_scale=1.0, label="burst"),
    ]
    return sweep_jobs(TINY, specs, workloads, prefix="grid")


def wide_grid():
    """A 4x2 grid: wide enough that 4 workers can't hold it all in flight,
    so a drain mid-sweep always leaves un-launched cells behind."""
    specs = [
        SchedulerSpec(kind="yarn-cs"),
        SchedulerSpec(kind="fgd"),
        SchedulerSpec(kind="chronus"),
        SchedulerSpec(kind="lyra"),
    ]
    workloads = [
        WorkloadSpec(spot_scale=2.0, label="medium"),
        WorkloadSpec(scenario="burst", spot_scale=1.0, label="burst"),
    ]
    return sweep_jobs(TINY, specs, workloads, prefix="grid")


def reference_results(jobs):
    return {
        key: metrics_to_payload(m)
        for key, m in ExperimentEngine(workers=1).run(jobs).items()
    }


def assert_no_zombie_workers():
    """Every worker process the engine spawned must be reaped."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leftover = multiprocessing.active_children()
        if not leftover:
            return
        time.sleep(0.05)
    assert not multiprocessing.active_children(), (
        f"worker processes outlived the sweep: {multiprocessing.active_children()}"
    )


class TestGracefulInterrupt:
    """SIGINT mid-sweep: drain, journal, raise — then resume."""

    def _interrupt_after(self, n):
        """A progress callback sending SIGINT once ``n`` cells completed."""
        state = {"count": 0}

        def progress(job, outcome):
            state["count"] += 1
            if state["count"] == n:
                os.kill(os.getpid(), signal.SIGINT)

        return progress

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_interrupt_then_resume_bit_identical(self, tmp_path, workers):
        jobs = wide_grid()
        reference = reference_results(jobs)
        journal_path = tmp_path / "sweep.jsonl"

        first = ExperimentEngine(
            workers=workers,
            journal=journal_path,
            progress=self._interrupt_after(1),
        )
        with pytest.raises(KeyboardInterrupt):
            first.run(jobs)
        assert_no_zombie_workers()

        # The journal is valid and holds everything that drained; the
        # partial grid (engine.history) matches it.
        replay = SweepJournal(journal_path).replay()
        assert replay.torn_lines == 0
        drained = len(replay.completed)
        assert 1 <= drained < len(jobs)
        assert len(first.history) == drained
        for job, metrics in first.history:
            assert metrics_to_payload(metrics) == reference[job.key]

        # Resume: replayed cells come from the journal, the rest run.
        second = ExperimentEngine(workers=workers, journal=journal_path)
        resumed = second.run(jobs)
        assert second.stats.journal_hits == drained
        assert second.stats.executed == len(jobs) - drained
        assert {k: metrics_to_payload(m) for k, m in resumed.items()} == reference

    def test_partial_history_flushed_before_interrupt_surfaces(self, tmp_path):
        # The CLI writes grid artifacts from engine.history after catching
        # KeyboardInterrupt; history must already hold the drained cells.
        jobs = small_grid()
        engine = ExperimentEngine(
            workers=2, journal=tmp_path / "j.jsonl", progress=self._interrupt_after(2)
        )
        with pytest.raises(KeyboardInterrupt):
            engine.run(jobs)
        assert len(engine.history) >= 2
        assert len(engine.grid_rows()) == len(engine.history)


class TestResumeSemantics:
    def test_full_journal_resume_runs_nothing(self, tmp_path):
        jobs = small_grid()
        journal_path = tmp_path / "sweep.jsonl"
        first = ExperimentEngine(workers=2, journal=journal_path)
        reference = {
            k: metrics_to_payload(m) for k, m in first.run(jobs).items()
        }
        second = ExperimentEngine(workers=2, journal=journal_path)
        resumed = second.run(jobs)
        assert second.stats.executed == 0
        assert second.stats.journal_hits == len(jobs)
        assert {k: metrics_to_payload(m) for k, m in resumed.items()} == reference

    def test_journal_recognises_renamed_grid(self, tmp_path):
        # Journal records are keyed by content hash, not display key: the
        # same semantic cells under a different prefix replay fully.
        journal_path = tmp_path / "sweep.jsonl"
        specs = [SchedulerSpec(kind="yarn-cs")]
        workloads = [WorkloadSpec(spot_scale=2.0, label="medium")]
        as_a = sweep_jobs(TINY, specs, workloads, prefix="table8")
        as_b = sweep_jobs(TINY, specs, workloads, prefix="table9")
        ExperimentEngine(journal=journal_path).run(as_a)
        engine = ExperimentEngine(journal=journal_path)
        engine.run(as_b)
        assert engine.stats.executed == 0
        assert engine.stats.journal_hits == 1

    def test_torn_tail_cell_reruns_and_journal_heals(self, tmp_path):
        jobs = small_grid()
        reference = reference_results(jobs)
        journal_path = tmp_path / "sweep.jsonl"
        ExperimentEngine(journal=journal_path).run(jobs)

        # Tear the final line, as a kill -9 mid-append would.
        lines = journal_path.read_text().splitlines(keepends=True)
        torn = lines[-1][: len(lines[-1]) // 2]
        journal_path.write_text("".join(lines[:-1]) + torn)

        engine = ExperimentEngine(journal=journal_path)
        resumed = engine.run(jobs)
        assert engine.stats.executed == 1  # only the torn cell re-ran
        assert engine.stats.journal_hits == len(jobs) - 1
        assert {k: metrics_to_payload(m) for k, m in resumed.items()} == reference
        # The re-run appended a fresh done record: a third run replays all.
        third = ExperimentEngine(journal=journal_path)
        third.run(jobs)
        assert third.stats.executed == 0

    def test_journal_and_cache_compose(self, tmp_path):
        # Cache hits are mirrored into the journal, so a journal resumed
        # after the cache vanished is still self-contained.
        jobs = small_grid()
        reference = reference_results(jobs)
        cache = ArtifactCache(tmp_path / "cache")
        ExperimentEngine(cache=cache).run(jobs)

        journal_path = tmp_path / "sweep.jsonl"
        warm = ExperimentEngine(cache=cache, journal=journal_path)
        warm.run(jobs)
        assert warm.stats.cache_hits == len(jobs)

        cache.clear()
        cold = ExperimentEngine(
            cache=ArtifactCache(tmp_path / "cache"), journal=journal_path
        )
        resumed = cold.run(jobs)
        assert cold.stats.journal_hits == len(jobs)
        assert cold.stats.executed == 0
        assert {k: metrics_to_payload(m) for k, m in resumed.items()} == reference


_KILLABLE_DRIVER = """
import sys, time
from repro.experiments import (
    ExperimentEngine, ExperimentScale, SchedulerSpec, WorkloadSpec, sweep_jobs,
)

TINY = ExperimentScale(name="tiny", num_nodes=8, duration_hours=6.0, seed=13)
specs = [SchedulerSpec(kind="yarn-cs"), SchedulerSpec(kind="fgd")]
workloads = [
    WorkloadSpec(spot_scale=2.0, label="medium"),
    WorkloadSpec(scenario="burst", spot_scale=1.0, label="burst"),
]
jobs = sweep_jobs(TINY, specs, workloads, prefix="grid")

def slow(job, outcome):
    # Stretch the sweep so the parent can SIGKILL us mid-flight.
    print("CELL-DONE", flush=True)
    time.sleep(0.5)

engine = ExperimentEngine(workers=2, journal=sys.argv[1], progress=slow)
engine.run(jobs)
print("FINISHED", flush=True)
"""


class TestKillMinusNine:
    def test_sigkill_mid_sweep_resumes_bit_identically(self, tmp_path):
        jobs = small_grid()
        reference = reference_results(jobs)
        journal_path = tmp_path / "sweep.jsonl"

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", _KILLABLE_DRIVER, str(journal_path)],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            # Wait for the first completed cell, then SIGKILL — no
            # handler runs, exactly like the OOM killer.
            line = proc.stdout.readline()
            assert "CELL-DONE" in line, f"driver died early: {line!r}"
            proc.kill()
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert proc.returncode == -signal.SIGKILL

        # The fsync'd journal survived with at least that first cell.
        replay = SweepJournal(journal_path).replay()
        assert len(replay.completed) >= 1
        for cache_key, payload in replay.completed.items():
            assert isinstance(payload, dict) and payload  # lossless metrics

        resumed_engine = ExperimentEngine(workers=2, journal=journal_path)
        resumed = resumed_engine.run(jobs)
        assert resumed_engine.stats.journal_hits == len(replay.completed)
        assert resumed_engine.stats.executed == len(jobs) - len(replay.completed)
        assert {k: metrics_to_payload(m) for k, m in resumed.items()} == reference
