"""Tests for the cluster-dynamics subsystem (specs, injector, simulator).

Covers the determinism contract (a fault schedule is a pure function of
``(spec, seed, node ids)`` and is part of the engine cache key), the
cluster's node activation/deactivation mutations staying consistent with
the capacity index and cached aggregates, the simulator's kill/requeue
semantics for abrupt and graceful outages, and the schedule-then-fail
edge cases mirroring the PR 1 schedule-then-preempt task-loss bug.
"""

import dataclasses

import pytest

from repro.cluster import (
    Cluster,
    ClusterSimulator,
    EventKind,
    GPUModel,
    SchedulingDecision,
    SimulatorConfig,
    TaskState,
    TaskType,
    make_nodes,
    run_simulation,
)
from repro.cluster.events import DynamicsAction
from repro.dynamics import (
    DynamicsSchedule,
    DynamicsSpec,
    FaultInjector,
    NodeOutage,
    dynamics_names,
    get_dynamics,
)
from repro.schedulers.base import Scheduler
from repro.schedulers.placement import find_placement
from tests.conftest import build_task


class FirstFitScheduler(Scheduler):
    name = "first-fit"

    def try_schedule(self, task, cluster, now, ctx=None):
        placements = find_placement(task, cluster.nodes)
        if placements is None:
            return None
        return SchedulingDecision(placements=placements)


def make_injector(**spec_kwargs) -> FaultInjector:
    seed = spec_kwargs.pop("seed", 0)
    return FaultInjector(DynamicsSpec(**spec_kwargs), seed=seed)


class StaticSchedule:
    """Injector stub replaying an explicit event list (test control)."""

    def __init__(self, events, initial_offline=()):
        self._schedule = DynamicsSchedule(
            initial_offline=tuple(initial_offline),
            events=tuple(events),
            outages=(),
        )

    def schedule(self, cluster):
        return self._schedule


def down(node_id, cause="failure", graceful=False):
    return DynamicsAction(node_id=node_id, cause=cause, graceful=graceful, online=False)


def up(node_id, cause="failure"):
    return DynamicsAction(node_id=node_id, cause=cause, graceful=False, online=True)


# ----------------------------------------------------------------------
# Spec validation and registry
# ----------------------------------------------------------------------
class TestSpec:
    def test_rejects_bad_fractions_and_negatives(self):
        with pytest.raises(ValueError):
            DynamicsSpec(drain_fraction=1.5)
        with pytest.raises(ValueError):
            DynamicsSpec(node_mtbf_hours=-1.0)
        with pytest.raises(ValueError):
            DynamicsSpec(offline_at_start_fraction=0.7, shrink_fraction=0.5)

    def test_empty_spec_generates_nothing(self):
        assert DynamicsSpec().is_empty()
        schedule = make_injector().schedule(Cluster.homogeneous(4))
        assert schedule.events == ()
        assert schedule.initial_offline == ()

    def test_presets_registered(self):
        assert {
            "node_churn",
            "maintenance_wave",
            "spot_reclaim_storm",
            "elastic_fleet",
        } <= set(dynamics_names())
        assert get_dynamics("node-churn").name == "node_churn"
        with pytest.raises(KeyError):
            get_dynamics("meteor_strike")


# ----------------------------------------------------------------------
# Schedule determinism (satellite: reproducible from (seed, cluster spec))
# ----------------------------------------------------------------------
class TestScheduleDeterminism:
    def test_schedule_is_pure_function_of_seed_and_nodes(self):
        spec = dict(node_mtbf_hours=20.0, drain_period_hours=6.0, drain_fraction=0.25,
                    reclaim_period_hours=9.0, reclaim_fraction=0.25)
        first = make_injector(seed=3, **spec).schedule(Cluster.homogeneous(8))
        second = make_injector(seed=3, **spec).schedule(Cluster.homogeneous(8))
        assert first == second
        assert first.fingerprint() == second.fingerprint()

    def test_seed_and_spec_change_the_schedule(self):
        cluster = Cluster.homogeneous(8)
        base = make_injector(seed=3, node_mtbf_hours=20.0).schedule(cluster)
        reseeded = make_injector(seed=4, node_mtbf_hours=20.0).schedule(cluster)
        retuned = make_injector(seed=3, node_mtbf_hours=21.0).schedule(cluster)
        assert base.fingerprint() != reseeded.fingerprint()
        assert base.fingerprint() != retuned.fingerprint()

    def test_events_sorted_and_windows_disjoint_per_node(self):
        schedule = make_injector(
            seed=11, node_mtbf_hours=5.0, repair_hours=3.0,
            drain_period_hours=4.0, drain_fraction=0.5, drain_duration_hours=2.0,
            horizon_hours=48.0,
        ).schedule(Cluster.homogeneous(6))
        times = [t for t, _, _ in schedule.events]
        assert times == sorted(times)
        by_node = {}
        for outage in schedule.outages:
            by_node.setdefault(outage.node_id, []).append(outage)
        for windows in by_node.values():
            windows.sort(key=lambda w: w.start)
            for before, after in zip(windows, windows[1:]):
                assert before.end < after.start  # merged => strictly disjoint

    def test_merge_keeps_first_cause(self):
        merged = FaultInjector._merge(
            [
                NodeOutage("n0", 100.0, 200.0, "drain"),
                NodeOutage("n0", 150.0, 400.0, "failure"),
                NodeOutage("n0", 500.0, 600.0, "failure"),
            ]
        )
        assert len(merged) == 2
        assert merged[0] == NodeOutage("n0", 100.0, 400.0, "drain")
        assert merged[0].graceful  # the planned drain's semantics win

    def test_elastic_tranches(self):
        schedule = make_injector(
            offline_at_start_fraction=0.25, grow_at_hours=2.0,
            shrink_at_hours=4.0, shrink_fraction=0.25,
        ).schedule(Cluster.homogeneous(8))
        assert len(schedule.initial_offline) == 2
        kinds = {kind for _, kind, _ in schedule.events}
        assert kinds == {EventKind.CAPACITY_CHANGE}
        # 2 growth joins + 2 permanent shrink departures
        online = [a for _, _, a in schedule.events if a.online]
        offline = [a for _, _, a in schedule.events if not a.online]
        assert len(online) == 2 and len(offline) == 2
        assert all(a.graceful for a in offline)
        # shrink tranche sits just ahead of the growth tranche, no overlap
        assert {a.node_id for a in offline}.isdisjoint(set(schedule.initial_offline))


# ----------------------------------------------------------------------
# Cache keying (satellite: dynamics must be in Scenario.cache_descriptor)
# ----------------------------------------------------------------------
class TestCacheDescriptor:
    def test_scenario_descriptor_includes_dynamics(self):
        from repro.workloads import get_scenario

        churn = get_scenario("node_churn")
        descriptor = churn.cache_descriptor(seed=7)
        assert descriptor["dynamics"] == get_dynamics("node_churn").descriptor()
        assert "dynamics" not in get_scenario("default").cache_descriptor(seed=7)

    def test_engine_cache_key_changes_with_dynamics(self):
        from repro.experiments.artifacts import content_key
        from repro.experiments.config import ExperimentScale
        from repro.experiments.engine import (
            SchedulerSpec,
            SimulationJob,
            WorkloadSpec,
            cache_payload,
        )

        scale = ExperimentScale(name="t", num_nodes=4, duration_hours=4.0)

        def key(scenario, dynamics=""):
            job = SimulationJob(
                key="k",
                scale=scale,
                scheduler=SchedulerSpec(kind="chronus"),
                workload=WorkloadSpec(scenario=scenario, dynamics=dynamics),
            )
            return content_key(cache_payload(job))

        assert key("default") != key("node_churn")
        assert key("default") != key("default", dynamics="node_churn")
        # distinct presets attached to the same workload are distinct cells
        assert key("default", dynamics="node_churn") != key(
            "default", dynamics="maintenance_wave"
        )


# ----------------------------------------------------------------------
# Cluster activation mutations
# ----------------------------------------------------------------------
class TestClusterActivation:
    def _cluster(self):
        return Cluster(make_nodes(4, GPUModel.A100, 8, "dyn"), validate_aggregates=True)

    def test_deactivate_drops_capacity_and_candidates(self):
        cluster = self._cluster()
        node = cluster.nodes[1]
        assert cluster.total_gpus() == 32.0
        cluster.deactivate_node(node.node_id)
        assert not node.available
        assert cluster.total_gpus() == 24.0
        assert cluster.idle_gpus() == 24.0
        candidates = cluster.capacity_index.node_fit_candidates(None, 8.0)
        assert node.node_id not in {n.node_id for n in candidates}
        with pytest.raises(ValueError):
            node.allocate_pod(build_task(gpus_per_pod=1.0))

    def test_activate_restores_canonical_order(self):
        cluster = self._cluster()
        cluster.deactivate_node(cluster.nodes[1].node_id)
        cluster.activate_node(cluster.nodes[1].node_id)
        candidates = cluster.capacity_index.node_fit_candidates(None, 8.0)
        assert [n.node_id for n in candidates] == [n.node_id for n in cluster.nodes]
        assert cluster.total_gpus() == 32.0

    def test_deactivate_requires_empty_node(self):
        cluster = self._cluster()
        task = build_task(gpus_per_pod=8.0)
        node = cluster.nodes[0]
        node.allocate_pod(task)
        with pytest.raises(ValueError):
            cluster.deactivate_node(node.node_id)
        node.release_task(task.task_id)
        cluster.deactivate_node(node.node_id)
        with pytest.raises(ValueError):
            cluster.deactivate_node(node.node_id)

    def test_whole_model_can_go_offline(self):
        nodes = make_nodes(1, GPUModel.A100, 8, "dyn") + make_nodes(1, GPUModel.H800, 8, "dyn")
        cluster = Cluster(nodes, validate_aggregates=True)
        cluster.deactivate_node(nodes[1].node_id)
        assert cluster.total_gpus(GPUModel.H800) == 0.0
        assert cluster.capacity_index.node_fit_candidates(GPUModel.H800, 1.0) == []
        cluster.activate_node(nodes[1].node_id)
        assert cluster.total_gpus(GPUModel.H800) == 8.0


# ----------------------------------------------------------------------
# Simulator kill semantics
# ----------------------------------------------------------------------
class TestSimulatorKills:
    def _sim(self, events, tasks, num_nodes=2, initial_offline=()):
        cluster = Cluster(
            make_nodes(num_nodes, GPUModel.A100, 8, "dyn"), validate_aggregates=True
        )
        sim = ClusterSimulator(
            cluster,
            FirstFitScheduler(),
            SimulatorConfig(restart_overhead=0.0, tick_interval=300.0),
            dynamics=StaticSchedule(events, initial_offline),
        )
        sim.submit_all(tasks)
        return sim

    def test_abrupt_kill_rolls_back_to_checkpoint(self):
        task = build_task(
            TaskType.HP, gpus_per_pod=8.0, duration=4000.0, submit_time=0.0,
            checkpoint_interval=1000.0,
        )
        sim = self._sim(
            [(2500.0, EventKind.NODE_FAIL, down("a100-dyn-0000")),
             (3000.0, EventKind.NODE_REPAIR, up("a100-dyn-0000"))],
            [task],
            num_nodes=1,
        )
        metrics = sim.run()
        assert task.state is TaskState.COMPLETED
        assert task.dynamics_kill_count == 1
        assert task.run_logs[0].killed and not task.run_logs[1].killed
        # 2500s of progress rolled back to the 2000s checkpoint: 500s * 8 GPUs
        assert task.lost_gpu_seconds == pytest.approx(500.0 * 8.0)
        # finish = repair(3000) + remaining work (4000 - 2000)
        assert task.finish_time == pytest.approx(5000.0)
        assert metrics.reliability.tasks_killed == 1
        assert metrics.reliability.hp_tasks_killed == 1
        assert metrics.reliability.node_failures == 1
        assert metrics.reliability.node_repairs == 1
        assert metrics.reliability.lost_gpu_hours == pytest.approx(500.0 * 8.0 / 3600.0)

    def test_graceful_drain_preserves_progress(self):
        task = build_task(
            TaskType.SPOT, gpus_per_pod=8.0, duration=4000.0, submit_time=0.0,
            checkpoint_interval=1000.0,
        )
        sim = self._sim(
            [(2500.0, EventKind.NODE_DRAIN, down("a100-dyn-0000", "drain", graceful=True)),
             (3000.0, EventKind.NODE_REPAIR, up("a100-dyn-0000", "drain"))],
            [task],
            num_nodes=1,
        )
        metrics = sim.run()
        assert task.state is TaskState.COMPLETED
        assert task.lost_gpu_seconds == 0.0
        # finish = repair(3000) + remaining work (4000 - 2500)
        assert task.finish_time == pytest.approx(4500.0)
        assert metrics.reliability.node_drains == 1
        assert metrics.reliability.lost_gpu_hours == 0.0
        # dynamics kills are infrastructure faults, not scheduler evictions
        assert task.eviction_count == 0
        assert metrics.spot.eviction_rate == 0.0

    def test_gang_task_dies_whole_when_one_node_fails(self):
        gang = build_task(
            TaskType.HP, num_pods=2, gpus_per_pod=8.0, duration=3000.0,
            submit_time=0.0, checkpoint_interval=500.0, gang=True,
        )
        sim = self._sim(
            [(1200.0, EventKind.NODE_FAIL, down("a100-dyn-0000")),
             (2000.0, EventKind.NODE_REPAIR, up("a100-dyn-0000"))],
            [gang],
            num_nodes=2,
        )
        sim.run()
        assert gang.state is TaskState.COMPLETED
        assert gang.dynamics_kill_count == 1
        # Both nodes' GPUs were released at the kill: the surviving node
        # holds nothing between the kill and the restart.
        assert all(not n.task_shares or gang.state for n in sim.cluster.nodes)

    def test_restart_pays_overhead_after_kill(self):
        task = build_task(
            TaskType.HP, gpus_per_pod=8.0, duration=2000.0, submit_time=0.0,
            checkpoint_interval=10_000.0,  # no checkpoint: full rollback
        )
        cluster = Cluster(make_nodes(1, GPUModel.A100, 8, "dyn"))
        sim = ClusterSimulator(
            cluster,
            FirstFitScheduler(),
            SimulatorConfig(restart_overhead=300.0),
            dynamics=StaticSchedule(
                [(1000.0, EventKind.NODE_FAIL, down("a100-dyn-0000")),
                 (1500.0, EventKind.NODE_REPAIR, up("a100-dyn-0000"))]
            ),
        )
        sim.submit_all([task])
        sim.run()
        # restart at 1500 pays the 300s overhead and redoes all 2000s
        assert task.finish_time == pytest.approx(1500.0 + 300.0 + 2000.0)
        assert task.lost_gpu_seconds == pytest.approx(1000.0 * 8.0)

    def test_graceful_kill_does_not_credit_restart_overhead_as_progress(self):
        """A graceful drain during the restart-overhead window of a
        restarted run must bank zero new progress: the overhead seconds
        are setup/checkpoint-reload wall time, not work."""
        task = build_task(
            TaskType.HP, gpus_per_pod=8.0, duration=2000.0, submit_time=0.0,
            checkpoint_interval=10_000.0,  # no checkpoints: progress is explicit
        )
        cluster = Cluster(make_nodes(1, GPUModel.A100, 8, "dyn"), validate_aggregates=True)
        sim = ClusterSimulator(
            cluster,
            FirstFitScheduler(),
            SimulatorConfig(restart_overhead=300.0),
            dynamics=StaticSchedule(
                [(1000.0, EventKind.NODE_FAIL, down("a100-dyn-0000")),
                 (1100.0, EventKind.NODE_REPAIR, up("a100-dyn-0000")),
                 # drain 200s into the restarted run — still inside the
                 # 300s overhead window, so zero real work happened
                 (1300.0, EventKind.NODE_DRAIN, down("a100-dyn-0000", "drain", graceful=True)),
                 (1400.0, EventKind.NODE_REPAIR, up("a100-dyn-0000", "drain"))]
            ),
        )
        sim.submit_all([task])
        sim.run()
        assert task.state is TaskState.COMPLETED
        assert task.completed_work == pytest.approx(2000.0)
        # restart at 1400 pays the overhead again and redoes all 2000s
        assert task.finish_time == pytest.approx(1400.0 + 300.0 + 2000.0)

    def test_paid_gpu_hours_integrates_outages(self):
        task = build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=0.0)
        sim = self._sim(
            [(500.0, EventKind.NODE_FAIL, down("a100-dyn-0001")),
             (900.0, EventKind.NODE_REPAIR, up("a100-dyn-0001"))],
            [task],
            num_nodes=2,
        )
        metrics = sim.run()
        # Full capacity (16 GPUs) over the whole run — which extends to
        # the final idle tick, i.e. the makespan — except 8 GPUs were
        # offline during the [500, 900) outage.
        expected = (16.0 * metrics.makespan - 8.0 * 400.0) / 3600.0
        assert metrics.reliability.paid_gpu_hours == pytest.approx(expected)
        assert metrics.reliability.goodput_gpu_hours == pytest.approx(
            1000.0 * 8.0 / 3600.0
        )

    def test_initial_offline_fleet_grows_later(self):
        # Two tasks, one node online: the second waits for the growth event.
        tasks = [
            build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=0.0),
            build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=0.0),
        ]
        sim = self._sim(
            [(600.0, EventKind.CAPACITY_CHANGE, up("a100-dyn-0001", "elastic"))],
            tasks,
            num_nodes=2,
            initial_offline=["a100-dyn-0001"],
        )
        metrics = sim.run()
        assert metrics.unfinished_tasks == 0
        finish_times = sorted(t.finish_time for t in tasks)
        assert finish_times == [pytest.approx(1000.0), pytest.approx(1600.0)]

    def test_trailing_dynamics_events_do_not_stretch_the_run(self):
        task = build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=0.0)
        sim = self._sim(
            [(50_000.0, EventKind.NODE_FAIL, down("a100-dyn-0001")),
             (60_000.0, EventKind.NODE_REPAIR, up("a100-dyn-0001"))],
            [task],
            num_nodes=2,
        )
        metrics = sim.run()
        # The run ends with the drained trace, not the 60ks repair event.
        assert metrics.makespan < 10_000.0

    def test_repair_revives_a_stuck_queue(self):
        # The only node the task fits on fails before the task arrives; the
        # tick chain dies (stuck queue), and the repair must revive it.
        task = build_task(TaskType.HP, gpus_per_pod=8.0, duration=500.0, submit_time=100.0)
        sim = self._sim(
            [(50.0, EventKind.NODE_FAIL, down("a100-dyn-0000")),
             (5000.0, EventKind.NODE_REPAIR, up("a100-dyn-0000"))],
            [task],
            num_nodes=1,
        )
        metrics = sim.run()
        assert metrics.unfinished_tasks == 0
        assert task.finish_time == pytest.approx(5500.0)


# ----------------------------------------------------------------------
# Schedule-then-fail edge cases (mirror of the PR 1 task-loss bug)
# ----------------------------------------------------------------------
class TestScheduleThenFailEdgeCases:
    def _conservation(self, sim, tasks):
        metrics = sim.run()
        assert metrics.unfinished_tasks == 0
        for task in tasks:
            assert task.state is TaskState.COMPLETED
            assert task.finish_time is not None
            # terminated exactly once: exactly one run ended un-interrupted
            clean_ends = [
                r for r in task.run_logs if not r.evicted and not r.killed
            ]
            assert len(clean_ends) == 1
            assert task not in sim.pending
        return metrics

    def test_task_scheduled_in_the_pass_its_node_fails(self):
        """Arrival and NODE_FAIL at the same timestamp: the arrival pass
        places the task on the doomed node, the fail event (processed
        after, by event-kind order) kills it — it must be requeued, not
        silently dropped, and still terminate exactly once."""
        cluster = Cluster(make_nodes(2, GPUModel.A100, 8, "dyn"), validate_aggregates=True)
        task = build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=500.0)
        sim = ClusterSimulator(
            cluster,
            FirstFitScheduler(),
            SimulatorConfig(restart_overhead=0.0),
            dynamics=StaticSchedule(
                [(500.0, EventKind.NODE_FAIL, down("a100-dyn-0000")),
                 (9000.0, EventKind.NODE_REPAIR, up("a100-dyn-0000"))]
            ),
        )
        sim.submit_all([task])
        metrics = self._conservation(sim, [task])
        assert task.dynamics_kill_count == 1
        # first-fit put it on node 0 at t=500, the kill moved it to node 1
        # in the same instant, so no queuing time accrued beyond zero
        assert task.finish_time == pytest.approx(1500.0)
        assert metrics.reliability.tasks_killed == 1

    def test_stale_finish_event_after_kill_is_ignored(self):
        """The finish event of a killed run must not complete the task
        while it waits (state check) or after it restarted (epoch check)."""
        cluster = Cluster(make_nodes(1, GPUModel.A100, 8, "dyn"), validate_aggregates=True)
        task = build_task(
            TaskType.HP, gpus_per_pod=8.0, duration=2000.0, submit_time=0.0,
            checkpoint_interval=10_000.0,
        )
        sim = ClusterSimulator(
            cluster,
            FirstFitScheduler(),
            SimulatorConfig(restart_overhead=0.0),
            dynamics=StaticSchedule(
                # kill at 1900, repair at 1950: the stale finish (t=2000)
                # fires *while the restarted run is in flight*
                [(1900.0, EventKind.NODE_FAIL, down("a100-dyn-0000")),
                 (1950.0, EventKind.NODE_REPAIR, up("a100-dyn-0000"))]
            ),
        )
        sim.submit_all([task])
        self._conservation(sim, [task])
        # full rollback (no checkpoint): restart at 1950 redoes everything
        assert task.finish_time == pytest.approx(1950.0 + 2000.0)

    def test_start_delayed_task_killed_before_it_begins(self):
        """A task placed with a preemption grace delay holds GPUs before
        its run starts; a failure in that window must not corrupt its
        progress accounting (negative elapsed)."""
        from repro.cluster import PodPlacement

        cluster = Cluster(make_nodes(1, GPUModel.A100, 8, "dyn"), validate_aggregates=True)
        spot = build_task(TaskType.SPOT, gpus_per_pod=8.0, duration=5000.0, submit_time=0.0)
        hp = build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=100.0)

        class PreemptForHP(FirstFitScheduler):
            def try_schedule(self, task, cluster, now, ctx=None):
                decision = super().try_schedule(task, cluster, now, ctx)
                if decision is not None or not task.is_hp:
                    return decision
                victims = [t.task_id for t in cluster.running_tasks.values() if t.is_spot]
                if not victims:
                    return None
                placement = PodPlacement(
                    node_id=cluster.nodes[0].node_id, gpu_indices=(), fraction=task.gpus_per_pod
                )
                return SchedulingDecision(placements=[placement], preempted_task_ids=victims)

        # HP preempts spot at t=100 and starts at 130 (grace); the node
        # fails at 120, inside the grace window.
        sim = ClusterSimulator(
            cluster,
            PreemptForHP(),
            SimulatorConfig(restart_overhead=0.0, preemption_grace_period=30.0),
            dynamics=StaticSchedule(
                [(120.0, EventKind.NODE_FAIL, down("a100-dyn-0000")),
                 (200.0, EventKind.NODE_REPAIR, up("a100-dyn-0000"))]
            ),
        )
        sim.submit_all([spot, hp])
        self._conservation(sim, [spot, hp])
        assert spot.lost_gpu_seconds >= 0.0
        assert all(t.completed_work <= t.duration for t in (spot, hp))

    def test_finish_and_fail_at_same_timestamp(self):
        """TASK_FINISH sorts before NODE_FAIL at equal times: the task
        completes against the pre-outage cluster and the fail handler must
        find an empty node, not double-kill a finished task."""
        cluster = Cluster(make_nodes(1, GPUModel.A100, 8, "dyn"), validate_aggregates=True)
        task = build_task(TaskType.HP, gpus_per_pod=8.0, duration=1000.0, submit_time=0.0)
        # A second arrival keeps task work alive past the failure so the
        # trailing dynamics events are processed, not abandoned.
        late = build_task(TaskType.HP, gpus_per_pod=8.0, duration=500.0, submit_time=1050.0)
        sim = ClusterSimulator(
            cluster,
            FirstFitScheduler(),
            SimulatorConfig(restart_overhead=0.0),
            dynamics=StaticSchedule(
                [(1000.0, EventKind.NODE_FAIL, down("a100-dyn-0000")),
                 (1100.0, EventKind.NODE_REPAIR, up("a100-dyn-0000"))]
            ),
        )
        sim.submit_all([task, late])
        metrics = self._conservation(sim, [task, late])
        assert task.dynamics_kill_count == 0
        assert task.finish_time == pytest.approx(1000.0)
        # the late task waited out the outage on the failed node
        assert late.finish_time == pytest.approx(1600.0)
        assert metrics.reliability.node_failures == 1
        assert metrics.reliability.tasks_killed == 0


# ----------------------------------------------------------------------
# Scheduler hooks
# ----------------------------------------------------------------------
class TestDynamicsHooks:
    def test_hooks_fire_in_order(self):
        calls = []

        class Recorder(FirstFitScheduler):
            def on_node_down(self, node, cluster, now):
                calls.append(("down", node.node_id, now))

            def on_node_up(self, node, cluster, now):
                calls.append(("up", node.node_id, now))

            def on_task_killed(self, task, cluster, now):
                calls.append(("killed", task.task_id, now))

        cluster = Cluster(make_nodes(1, GPUModel.A100, 8, "dyn"))
        task = build_task(TaskType.HP, gpus_per_pod=8.0, duration=2000.0, submit_time=0.0)
        sim = ClusterSimulator(
            cluster,
            Recorder(),
            SimulatorConfig(restart_overhead=0.0),
            dynamics=StaticSchedule(
                [(500.0, EventKind.NODE_FAIL, down("a100-dyn-0000")),
                 (700.0, EventKind.NODE_REPAIR, up("a100-dyn-0000"))]
            ),
        )
        sim.submit_all([task])
        sim.run()
        assert calls[0] == ("killed", task.task_id, 500.0)
        assert calls[1] == ("down", "a100-dyn-0000", 500.0)
        assert calls[2] == ("up", "a100-dyn-0000", 700.0)
