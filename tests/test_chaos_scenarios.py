"""Chaos scenarios through the parallel experiment engine.

Acceptance for the dynamics subsystem: all six scheduler families
(Chronus, YARN-CS, FGD, Lyra, PTS, GFS) complete the four chaos
scenarios (``node_churn``, ``maintenance_wave``, ``spot_reclaim_storm``,
``elastic_fleet``) through the engine with bit-identical
:class:`SimulationMetrics` at ``--workers 1`` and ``--workers 2``, and
node-failure events kill/requeue running tasks without task loss —
every submitted task terminates exactly once.
"""

import pytest

from repro.cluster import reset_task_counter
from repro.experiments.config import ExperimentScale
from repro.experiments.engine import (
    ExperimentEngine,
    SchedulerSpec,
    WorkloadSpec,
    sweep_jobs,
)
from repro.workloads import get_scenario
from tests.conftest import assert_metrics_identical

CHAOS_SCENARIOS = ("node_churn", "maintenance_wave", "spot_reclaim_storm", "elastic_fleet")
FAMILIES = ("chronus", "yarn-cs", "fgd", "lyra", "pts", "gfs")

#: Small but non-trivial: every scenario sees kills or capacity changes.
SCALE = ExperimentScale(name="chaos", num_nodes=10, duration_hours=8.0, seed=13)
SPOT_SCALE = 2.0


def _jobs():
    specs = [SchedulerSpec(kind=kind) for kind in FAMILIES]
    workloads = [
        WorkloadSpec(scenario=name, spot_scale=SPOT_SCALE, label=name)
        for name in CHAOS_SCENARIOS
    ]
    return sweep_jobs(SCALE, specs, workloads, prefix="chaos")


@pytest.fixture(scope="module")
def serial_results():
    engine = ExperimentEngine(workers=1)
    return engine.run(_jobs())


def _submitted_task_count(scenario_name: str) -> int:
    reset_task_counter()
    scenario = get_scenario(scenario_name)
    trace = scenario.build_trace(
        cluster_gpus=SCALE.total_gpus,
        duration_hours=SCALE.duration_hours,
        spot_scale=SPOT_SCALE,
        seed=SCALE.seed,
        gpu_model=SCALE.gpu_model,
    )
    return len(trace.tasks)


class TestChaosConservation:
    def test_every_family_completes_every_chaos_scenario(self, serial_results):
        expected_tasks = {name: _submitted_task_count(name) for name in CHAOS_SCENARIOS}
        for job in _jobs():
            metrics = serial_results[job.key]
            scenario = job.workload.scenario
            # Conservation: every submitted task terminated exactly once.
            assert metrics.unfinished_tasks == 0, job.key
            finished = metrics.hp.count + metrics.spot.count
            assert finished == expected_tasks[scenario], job.key

    def test_dynamics_actually_disrupt(self, serial_results):
        """Each chaos scenario produces its advertised event mix."""
        by_scenario = {}
        for job in _jobs():
            by_scenario.setdefault(job.workload.scenario, []).append(
                serial_results[job.key].reliability
            )
        for rel in by_scenario["node_churn"]:
            assert rel.node_failures > 0
        for rel in by_scenario["maintenance_wave"]:
            assert rel.node_drains > 0
            assert rel.lost_gpu_hours == 0.0  # drains are graceful
        for rel in by_scenario["spot_reclaim_storm"]:
            assert rel.capacity_changes > 0
        for rel in by_scenario["elastic_fleet"]:
            assert rel.capacity_changes > 0
        # across the whole grid, churn did interrupt running tasks
        assert any(
            rel.tasks_killed > 0 for rels in by_scenario.values() for rel in rels
        )

    def test_paid_capacity_reflects_outages(self, serial_results):
        """Goodput accounting is sane: paid > 0 and goodput <= paid + slack."""
        for job in _jobs():
            rel = serial_results[job.key].reliability
            assert rel.paid_gpu_hours > 0.0
            assert rel.goodput_gpu_hours > 0.0


class TestChaosWorkerParity:
    def test_workers_2_bit_identical_to_workers_1(self, serial_results):
        pooled = ExperimentEngine(workers=2).run(_jobs())
        for key, metrics in serial_results.items():
            assert_metrics_identical(pooled[key], metrics, f"workers=2 {key}")
