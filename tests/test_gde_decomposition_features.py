"""Tests for temporal decomposition, feature extraction and the window dataset."""

import numpy as np
import pytest

from repro.core.gde import (
    BusinessVocabulary,
    TemporalFeature,
    build_window_dataset,
    decompose,
    decompose_batch,
    moving_average,
    temporal_features,
    train_test_split_dataset,
)
from repro.workloads import default_organizations, generate_org_demand_matrix


class TestMovingAverage:
    def test_constant_series_unchanged(self):
        series = np.full(48, 5.0)
        assert np.allclose(moving_average(series, 25), series)

    def test_length_preserved(self):
        series = np.random.default_rng(0).normal(size=100)
        assert moving_average(series, 25).shape == series.shape

    def test_kernel_one_is_identity(self):
        series = np.arange(10.0)
        assert np.allclose(moving_average(series, 1), series)

    def test_smooths_noise(self):
        rng = np.random.default_rng(1)
        series = np.sin(np.linspace(0, 8 * np.pi, 200)) + rng.normal(0, 0.5, 200)
        smooth = moving_average(series, 25)
        assert np.var(np.diff(smooth)) < np.var(np.diff(series))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            moving_average(np.zeros((2, 2)), 5)
        with pytest.raises(ValueError):
            moving_average(np.zeros(5), 0)


class TestDecomposition:
    def test_components_sum_to_series(self):
        series = np.random.default_rng(2).normal(10, 2, size=168)
        trend, cyclical = decompose(series, 25)
        assert np.allclose(trend + cyclical, series)

    def test_batch_decomposition_matches_rowwise(self):
        batch = np.random.default_rng(3).normal(size=(5, 96))
        trends, cyclicals = decompose_batch(batch, 13)
        for i in range(5):
            t, c = decompose(batch[i], 13)
            assert np.allclose(trends[i], t)
            assert np.allclose(cyclicals[i], c)

    def test_batch_requires_2d(self):
        with pytest.raises(ValueError):
            decompose_batch(np.zeros(10), 5)


class TestTemporalFeatures:
    def test_hour_weekday_extraction(self):
        feature = TemporalFeature.from_hour_index(26)  # day 1, hour 2
        assert feature.hour == 2
        assert feature.weekday == 1
        assert feature.holiday == 0

    def test_holiday_flag(self):
        feature = TemporalFeature.from_hour_index(24 * 5 + 3, holidays={5})
        assert feature.holiday == 1

    def test_matrix_shape_and_ranges(self):
        matrix = temporal_features(range(0, 500, 7))
        assert matrix.shape[1] == 3
        assert matrix[:, 0].max() < 24
        assert matrix[:, 1].max() < 7
        assert set(np.unique(matrix[:, 2])) <= {0, 1}


class TestBusinessVocabulary:
    def test_fit_and_encode(self):
        vocab = BusinessVocabulary().fit(
            [
                {"organization": "a", "cluster": "c1", "gpu_model": "A100"},
                {"organization": "b", "cluster": "c2", "gpu_model": "A100"},
            ]
        )
        assert vocab.size("organization") == 3  # includes <unk>
        encoded = vocab.encode({"organization": "b", "cluster": "c1", "gpu_model": "A100"})
        assert encoded.shape == (3,)
        assert encoded[0] == 2

    def test_unknown_value_maps_to_zero(self):
        vocab = BusinessVocabulary().fit([{"organization": "a"}])
        assert vocab.encode({"organization": "zzz"})[0] == 0

    def test_encode_many_stacks(self):
        vocab = BusinessVocabulary().fit([{"organization": "a"}, {"organization": "b"}])
        matrix = vocab.encode_many([{"organization": "a"}, {"organization": "b"}])
        assert matrix.shape == (2, 3)


class TestWindowDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        orgs = default_organizations()
        history = generate_org_demand_matrix(orgs, 4 * 168, seed=0)
        attrs = {o.name: o.business_attributes() for o in orgs}
        return build_window_dataset(history, attrs, input_length=168, horizon=24, stride=12)

    def test_window_shapes(self, dataset):
        arrays = dataset.arrays()
        assert arrays["X"].shape[1] == 168
        assert arrays["Y"].shape[1] == 24
        assert arrays["temporal"].shape == (len(dataset), 3)
        assert arrays["business"].shape[1] == 3

    def test_all_orgs_represented(self, dataset):
        orgs = set(dataset.arrays()["orgs"])
        assert orgs == {"org-A", "org-B", "org-C", "org-D"}

    def test_normalisation_round_trip(self, dataset):
        value = np.array([50.0, 75.0])
        normalised = dataset.normalise_value("org-A", value)
        assert np.allclose(dataset.denormalise_mean("org-A", normalised), value)

    def test_chronological_split(self, dataset):
        train, test = train_test_split_dataset(dataset, test_fraction=0.25)
        assert len(train) + len(test) == len(dataset)
        per_org_last_train = {}
        for sample in train.samples:
            per_org_last_train[sample.org] = max(
                per_org_last_train.get(sample.org, -1), sample.start_hour
            )
        for sample in test.samples:
            assert sample.start_hour > per_org_last_train[sample.org]

    def test_short_series_skipped(self):
        history = {"tiny": np.ones(50)}
        dataset = build_window_dataset(history, {"tiny": {"organization": "tiny"}})
        assert len(dataset) == 0

    def test_empty_dataset_arrays_raise(self):
        history = {"tiny": np.ones(10)}
        dataset = build_window_dataset(history, {})
        with pytest.raises(ValueError):
            dataset.arrays()
