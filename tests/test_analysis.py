"""Tests for observation statistics, economics and report formatting."""

import numpy as np
import pytest

from repro.analysis import (
    allocation_heatmap,
    cdf_at,
    compare_request_cdfs,
    demand_summary,
    empirical_cdf,
    estimate_deployment_benefit,
    format_scheduler_table,
    format_table,
    heatmap_statistics,
    hourly_eviction_series,
    improvement_row,
    organization_demand_figure,
    runtime_distribution,
)
from repro.cluster import GPUModel, TaskType
from repro.cluster.pricing import FleetPricing, monthly_allocation_revenue, monthly_benefit
from repro.cluster.task import RunLog
from tests.conftest import build_task


class TestCDFs:
    def test_empirical_cdf_monotone(self):
        values, cdf = empirical_cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert list(cdf) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_at(self):
        assert cdf_at([1, 2, 3, 4], 2) == pytest.approx(0.5)
        assert cdf_at([], 1) == 0.0

    def test_request_comparison_captures_shift(self):
        legacy = [0.25, 0.5, 0.5, 1.0]
        modern = [8.0, 8.0, 8.0, 1.0]
        cmp = compare_request_cdfs(legacy, modern)
        assert cmp.legacy_partial_fraction == pytest.approx(0.75)
        assert cmp.modern_full_card_fraction == pytest.approx(1.0)
        assert cmp.modern_full_node_fraction == pytest.approx(0.75)


class TestRuntimeDistribution:
    def test_percentiles_and_queue_ratio(self):
        tasks = []
        for gpus, jqt in ((1, 100.0), (1, 120.0), (8, 400.0), (8, 600.0)):
            task = build_task(TaskType.HP, gpus_per_pod=float(gpus), duration=3600.0 * gpus)
            task.total_queue_time = jqt
            tasks.append(task)
        dist = runtime_distribution(tasks)
        assert dist.runtime_p99 >= dist.runtime_p50
        assert dist.queue_ratio(large=8, small=1) > 3.0


class TestEvictionSeries:
    def test_rates_counted_per_hour(self):
        spot = build_task(TaskType.SPOT, duration=1000.0)
        spot.run_logs = [RunLog(start=100.0, evicted=True), RunLog(start=4000.0, evicted=False)]
        hp = build_task(TaskType.HP, duration=1000.0)
        hp.run_logs = [RunLog(start=200.0)]
        series = hourly_eviction_series([spot, hp], horizon_hours=3)
        assert series.rates[0] == pytest.approx(1.0)
        assert series.rates[1] == pytest.approx(0.0)
        assert series.max_rate == 1.0
        assert series.min_rate == 0.0


class TestDemandAndHeatmaps:
    def test_org_demand_figure_week(self):
        demand = organization_demand_figure(hours=168)
        assert set(demand) == {"org-A", "org-B", "org-C", "org-D"}
        summary = demand_summary(demand)
        assert summary["org-B"]["max"] > summary["org-B"]["min"]

    def test_heatmap_shapes_and_rates(self):
        demand = {"Cluster A": np.full(24, 40.0), "Cluster B": np.full(24, 10.0)}
        heatmaps = allocation_heatmap(demand, {"Cluster A": 8, "Cluster B": 8})
        assert heatmaps["Cluster A"].shape == (8, 24)
        rates = heatmap_statistics(heatmaps)
        assert rates["Cluster A"] > rates["Cluster B"]


class TestPricing:
    def test_revenue_scales_with_allocation(self):
        counts = {GPUModel.A100: 100}
        low = monthly_allocation_revenue(counts, {GPUModel.A100: 0.5})
        high = monthly_allocation_revenue(counts, {GPUModel.A100: 0.9})
        assert high > low

    def test_monthly_benefit_components(self):
        counts = {GPUModel.A100: 1000}
        benefit = monthly_benefit(
            counts,
            allocation_before={GPUModel.A100: 0.74},
            allocation_after={GPUModel.A100: 0.88},
            eviction_before={GPUModel.A100: 0.3},
            eviction_after={GPUModel.A100: 0.08},
        )
        assert benefit["allocation_gain"] > 0
        assert benefit["eviction_gain"] > 0
        assert benefit["total"] == pytest.approx(
            benefit["allocation_gain"] + benefit["eviction_gain"]
        )

    def test_spot_price_discounted(self):
        pricing = FleetPricing()
        assert pricing.spot_price(GPUModel.A100) < pricing.on_demand_price(GPUModel.A100)

    def test_paper_operating_points_give_six_figure_monthly_benefit(self):
        benefit = estimate_deployment_benefit()
        # The paper reports roughly $459,715/month for this fleet; with list
        # prices our estimate lands within an order of magnitude of that.
        assert 100_000 < benefit.monthly_gain_usd < 5_000_000

    def test_deployment_benefit_helpers(self):
        benefit = estimate_deployment_benefit()
        assert benefit.allocation_improvement(GPUModel.A800) > 10.0
        assert 0.5 < benefit.eviction_reduction(GPUModel.A100) < 0.9


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.25]], title="T")
        assert text.startswith("T\n")
        assert "2.50" in text and "3.25" in text

    def test_scheduler_table_and_improvements(self):
        rows = {
            "YARN-CS": {"hp_jct_p99": 10.0, "hp_jct": 5.0, "hp_jqt": 2.0,
                        "spot_jct": 8.0, "spot_jqt": 4.0, "spot_eviction": 0.2},
            "GFS": {"hp_jct_p99": 10.0, "hp_jct": 4.0, "hp_jqt": 1.0,
                    "spot_jct": 6.0, "spot_jqt": 2.0, "spot_eviction": 0.05},
        }
        table = format_scheduler_table(rows, title="cmp")
        assert "GFS" in table and "YARN-CS" in table
        improvements = improvement_row(rows)
        assert improvements["spot_jct"] == pytest.approx(0.25)
        assert improvements["spot_eviction"] == pytest.approx(0.75)

    def test_improvement_row_without_gfs(self):
        assert improvement_row({"YARN-CS": {"hp_jct": 1.0}}) == {}
