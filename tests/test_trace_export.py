"""Chrome trace-event export: schema validity and byte-determinism.

Validates the Perfetto/``chrome://tracing`` JSON produced by
:mod:`repro.obs.trace_export` against the trace-event contract — every
event carries ``ph``/``pid``/``tid``/``name``, phases are drawn from the
set the viewers accept, complete events have non-negative integer
``dur``, instants carry a scope — on a *chaos* run (node_churn) so the
export demonstrably covers evictions and kills, not just the happy
arrival→run→finish path.  Because timestamps are simulated microseconds,
two runs of the same seed must serialise to byte-identical JSON.
"""

from __future__ import annotations

import json

import pytest

from tests.test_stepping_determinism import build_sim
from repro.obs import Recorder
from repro.obs.trace_export import (
    SCHEDULER_PID,
    TASKS_PID,
    build_chrome_trace,
    task_lifecycle_events,
    trace_to_json,
    write_chrome_trace,
)

#: phases this exporter may legally emit (subset of the Chrome spec)
ALLOWED_PHASES = {"M", "X", "i", "C"}


def _chaos_trace():
    """One instrumented node_churn run serialised to a trace document."""
    rec = Recorder()
    sim = build_sim("gfs", "node_churn")
    sim.obs = rec
    sim.run()
    return build_chrome_trace(
        tasks=sim.all_tasks,
        recorder=rec,
        final_time=sim.now,
        metadata={"scenario": "node_churn", "scheduler": "gfs"},
    )


@pytest.fixture(scope="module")
def chaos_trace():
    return _chaos_trace()


def test_trace_document_shape(chaos_trace):
    assert set(chaos_trace) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert chaos_trace["displayTimeUnit"] == "ms"
    assert chaos_trace["otherData"]["scenario"] == "node_churn"
    assert chaos_trace["traceEvents"]


def test_every_event_satisfies_chrome_schema(chaos_trace):
    for event in chaos_trace["traceEvents"]:
        assert event["ph"] in ALLOWED_PHASES, event
        assert isinstance(event["pid"], int) and event["pid"] in (TASKS_PID, SCHEDULER_PID)
        assert isinstance(event["tid"], int) and event["tid"] >= 0
        assert isinstance(event["name"], str) and event["name"]
        if event["ph"] == "M":
            assert event["name"] in ("process_name", "thread_name")
            assert "name" in event["args"]
            continue
        assert isinstance(event["ts"], int) and event["ts"] >= 0, event
        if event["ph"] == "X":
            assert isinstance(event["dur"], int) and event["dur"] >= 0, event
        if event["ph"] == "i":
            assert event["s"] == "t", event
        json.dumps(event)  # every event must be JSON-clean on its own


def test_timestamps_monotonic_within_each_track(chaos_trace):
    tracks = {}
    for event in chaos_trace["traceEvents"]:
        if event["ph"] in ("X", "i"):
            tracks.setdefault((event["pid"], event["tid"]), []).append(event["ts"])
    assert tracks
    for key, stamps in tracks.items():
        assert stamps == sorted(stamps), f"non-monotonic track {key}"


def test_chaos_run_exports_evictions_and_kills(chaos_trace):
    names = [e["name"] for e in chaos_trace["traceEvents"] if e["ph"] == "i"]
    assert "finish" in names
    # node_churn exists to produce disruption; the export must show it.
    assert "evict" in names or "kill" in names, sorted(set(names))
    assert any(n.startswith("pass:") for n in names)


def test_task_lifecycle_segments_tile_each_task(chaos_trace):
    """Per task thread: queue and run spans alternate without overlap."""
    by_tid = {}
    for event in chaos_trace["traceEvents"]:
        if event["pid"] == TASKS_PID and event["ph"] == "X":
            by_tid.setdefault(event["tid"], []).append(event)
    assert by_tid
    for spans in by_tid.values():
        cursor = None
        for span in spans:  # already ts-sorted within the track
            if cursor is not None:
                assert span["ts"] >= cursor, span
            cursor = span["ts"] + span["dur"]
            assert span["name"] in ("queue", "run")


def test_scheduler_track_counters_and_pass_args(chaos_trace):
    counters = [e for e in chaos_trace["traceEvents"] if e["ph"] == "C"]
    assert counters and all(e["pid"] == SCHEDULER_PID for e in counters)
    assert {e["name"] for e in counters} == {
        "pending_depth", "running_tasks", "allocation_rate",
    }
    passes = [
        e for e in chaos_trace["traceEvents"]
        if e["ph"] == "i" and e["name"].startswith("pass:")
    ]
    assert passes
    for event in passes:
        assert set(event["args"]) == {
            "trigger", "examined", "scheduled", "memo_hits",
            "index_rejects", "searches", "pending_depth",
        }


def test_export_is_byte_deterministic(chaos_trace):
    assert trace_to_json(chaos_trace) == trace_to_json(_chaos_trace())


def test_open_segments_clamp_to_final_time():
    """Export mid-run: still-queued/running tasks end at final_time."""
    rec = Recorder()
    sim = build_sim("gfs")
    sim.obs = rec
    sim.advance(until=3600.0)
    events = task_lifecycle_events(sim.all_tasks, final_time=sim.now)
    horizon = int(round(sim.now * 1e6))
    spans = [e for e in events if e["ph"] == "X"]
    assert spans
    for span in spans:
        assert span["ts"] + span["dur"] <= horizon


def test_write_chrome_trace_round_trips(tmp_path):
    rec = Recorder()
    sim = build_sim("chronus")
    sim.obs = rec
    sim.run()
    out = write_chrome_trace(
        tmp_path / "trace.json", tasks=sim.all_tasks, recorder=rec, final_time=sim.now
    )
    loaded = json.loads(out.read_text())
    assert loaded["traceEvents"]
    assert {e["ph"] for e in loaded["traceEvents"]} <= ALLOWED_PHASES
