"""Tests for the content-keyed artifact cache and grid exports."""

import csv
import json
import math

import pytest

from repro.cluster import SimulationMetrics, TaskClassMetrics
from repro.experiments import (
    ArtifactCache,
    content_key,
    export_grid_csv,
    export_grid_json,
    flatten_metrics,
    metrics_from_payload,
    metrics_to_payload,
)


def sample_metrics(jct: float = 100.0) -> SimulationMetrics:
    return SimulationMetrics(
        hp=TaskClassMetrics(count=3, jct_mean=jct, jct_p99=2 * jct, jqt_mean=5.0,
                            jqt_p99=9.0, eviction_rate=0.0, total_evictions=0, total_runs=3),
        spot=TaskClassMetrics(count=2, jct_mean=50.0, jct_p99=80.0, jqt_mean=20.0,
                              jqt_p99=30.0, eviction_rate=0.25, total_evictions=1, total_runs=4),
        allocation_rate_mean=0.8,
        allocation_rate_series=[0.7, 0.9],
        allocation_sample_times=[0.0, 600.0],
        makespan=1234.5,
        unfinished_tasks=0,
    )


class TestContentKey:
    def test_stable_across_calls(self):
        payload = {"scale": "small", "spot_scale": 2.0, "overrides": [("a", 1)]}
        assert content_key(payload) == content_key(payload)

    def test_key_order_irrelevant(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_any_field_change_changes_key(self):
        base = {"scheduler": "gfs", "seed": 7}
        assert content_key(base) != content_key({"scheduler": "gfs", "seed": 8})
        assert content_key(base) != content_key({"scheduler": "gfs-e", "seed": 7})
        assert content_key(base) != content_key(base | {"extra": None})

    def test_version_salt(self):
        assert content_key({"a": 1}, version=1) != content_key({"a": 1}, version=2)

    def test_unserialisable_payload_rejected(self):
        with pytest.raises(TypeError):
            content_key({"fn": lambda: None})


class TestMetricsRoundTrip:
    def test_lossless(self):
        metrics = sample_metrics()
        rebuilt = metrics_from_payload(metrics_to_payload(metrics))
        assert metrics_to_payload(rebuilt) == metrics_to_payload(metrics)
        assert rebuilt.allocation_rate_series == [0.7, 0.9]
        assert rebuilt.spot.total_evictions == 1

    def test_nan_fields_survive(self):
        metrics = SimulationMetrics()  # all-NaN defaults
        rebuilt = metrics_from_payload(
            json.loads(json.dumps(metrics_to_payload(metrics)))
        )
        assert math.isnan(rebuilt.hp.jct_mean)
        assert math.isnan(rebuilt.allocation_rate_mean)


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key_for({"cell": 1})
        assert cache.load(key) is None
        assert cache.misses == 1
        cache.store(key, sample_metrics(), payload={"cell": 1})
        assert key in cache
        loaded = cache.load(key)
        assert cache.hits == 1
        assert metrics_to_payload(loaded) == metrics_to_payload(sample_metrics())

    def test_different_payload_different_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        k1 = cache.key_for({"seed": 1})
        k2 = cache.key_for({"seed": 2})
        assert k1 != k2
        cache.store(k1, sample_metrics(100.0))
        cache.store(k2, sample_metrics(200.0))
        assert len(cache) == 2
        assert cache.load(k1).hp.jct_mean == 100.0
        assert cache.load(k2).hp.jct_mean == 200.0

    def test_corrupt_entry_treated_as_miss_and_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key_for({"x": 1})
        path = cache.store(key, sample_metrics())
        path.write_text("{not json")
        assert cache.load(key) is None
        # The corrupt file is moved aside, not deleted: evidence survives,
        # but the key no longer resolves (a later load is a clean miss).
        assert not path.exists()
        quarantined = path.with_name(path.name + ".quarantined")
        assert quarantined.exists()
        assert quarantined.read_text() == "{not json"
        assert cache.quarantined == 1
        assert cache.load(key) is None
        assert cache.misses == 2

    @pytest.mark.parametrize(
        "mangle",
        [
            pytest.param(lambda text: "", id="empty"),
            pytest.param(lambda text: text[: len(text) // 2], id="truncated"),
            pytest.param(lambda text: "\x00" * 64, id="binary-garbage"),
            pytest.param(
                lambda text: json.dumps({"key": "k", "payload": None}),
                id="missing-metrics",
            ),
            pytest.param(
                lambda text: json.dumps({"metrics": {"hp": "not-a-dict"}}),
                id="wrong-shape",
            ),
        ],
    )
    def test_corruption_matrix_all_quarantine_as_miss(self, tmp_path, mangle):
        cache = ArtifactCache(tmp_path)
        key = cache.key_for({"x": 2})
        path = cache.store(key, sample_metrics())
        path.write_text(mangle(path.read_text()))
        assert cache.load(key) is None
        assert cache.quarantined == 1
        assert path.with_name(path.name + ".quarantined").exists()
        # A fresh store after quarantine fully repairs the entry.
        cache.store(key, sample_metrics())
        reloaded = cache.load(key)
        assert reloaded is not None
        assert reloaded.makespan == sample_metrics().makespan

    def test_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store(cache.key_for({"a": 1}), sample_metrics())
        assert cache.clear() == 1
        assert len(cache) == 0


class TestExports:
    def rows(self):
        return [
            {"key": "t/low/GFS", "scheduler": "GFS", **flatten_metrics(sample_metrics())},
            {"key": "t/low/FGD", "scheduler": "FGD", **flatten_metrics(sample_metrics(70.0))},
        ]

    def test_json_export(self, tmp_path):
        path = export_grid_json(self.rows(), tmp_path / "grid.json")
        data = json.loads(path.read_text())
        assert len(data) == 2
        assert {r["scheduler"] for r in data} == {"GFS", "FGD"}
        assert data[0]["hp_jct_mean"] in (100.0, 70.0)

    def test_csv_export(self, tmp_path):
        path = export_grid_csv(self.rows(), tmp_path / "grid.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["key"] == "t/low/GFS"
        assert float(rows[1]["hp_jct_mean"]) == 70.0

    def test_flatten_covers_headline_metrics(self):
        row = flatten_metrics(sample_metrics())
        assert row["spot_eviction_rate"] == 0.25
        assert row["allocation_rate_mean"] == 0.8
        assert row["makespan"] == 1234.5
