"""Setup shim for environments without the `wheel` package.

``pip install -e .`` (PEP 660) requires a wheel-capable setuptools; on
offline machines without ``wheel`` installed, ``python setup.py develop``
performs the equivalent editable install.
"""

from setuptools import setup

setup()
